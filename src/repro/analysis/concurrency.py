"""Whole-program concurrency-safety analysis (the REP7xx family).

PR 6 made the platform genuinely concurrent: ``repro.datalake.updater``
thread/process workers race the foreground ``submit()`` path.  The
bit-identical-resume guarantee only survives that concurrency while
every piece of shared mutable state is either lock-guarded or owned by
exactly one thread — and those invariants are exactly the kind that
break silently, as nondeterministic verdicts, long after the offending
diff merged.  This module checks them statically, at lint time:

REP701 **thread-escape**
    Roots at every ``threading.Thread(target=...)`` / process-worker
    spawn site (plus the configured foreground entry points), walks
    the call graph to compute which instance attributes are reachable
    from both a worker context and the foreground path, and flags any
    unsynchronized mutation of such shared state.
REP702 **guarded-by contracts**
    ``# repro: guarded-by(_lock)`` on an attribute's initialisation
    line declares its guard; every mutation site of that attribute
    (outside ``__init__``) must then sit inside ``with self._lock:``.
REP703 **lock-order graph**
    Nested ``with``-acquisitions — direct and through resolvable calls
    made while holding a lock — form a lock-order graph; Tarjan SCCs
    of size > 1 (or a re-acquisition self-edge: ``threading.Lock`` is
    not reentrant) are potential deadlocks.  ``repro deps --locks``
    exports the same graph as DOT.
REP704 **worker-boundary hygiene**
    Process-worker targets must be module-level functions: lambdas,
    nested functions and bound methods drag the enclosing frame or the
    whole instance (locks, threads, live arrays) into the pickled
    payload — or fail outright under the spawn start method.
REP705 **blocking under lock**
    ``time.sleep``/``.join()``/``.recv()``/file I/O while holding a
    lock serialises every thread contending for it; flagged directly
    and through resolvable calls that may transitively block.

Extraction happens per module at parse time into the JSON-serialisable
:class:`ModuleConcurrency` carried by each
:class:`~repro.analysis.graph.ModuleSummary` — so the facts replay
from the incremental cache like every other summary field.  Resolution
is conservative in the same way the REP6xx family is: a call or lock
that cannot be pinned to a project function/attribute never produces a
finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from .config import AnalysisConfig
from .findings import Severity
from .graph import ProjectGraph, _tarjan
from .rules import (GraphRule, ImportMap, RawGraphFinding,
                    register_graph)

#: ``with``-context attribute/variable names treated as locks.
LOCK_NAME_RE = re.compile(
    r"(^|_)(r?lock|mutex|sem(aphore)?|cond(ition)?)s?$")

#: ``# repro: guarded-by(lock_attr)`` annotation on an attribute's
#: initialisation line (class body or ``__init__``).
GUARD_RE = re.compile(
    r"#\s*repro:\s*guarded-by\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)")

#: Method names that mutate their receiver (``self.x.append(...)``
#: counts as a write to ``x``).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "remove", "setdefault",
    "sort", "update",
})

#: Resolved dotted calls that block the calling thread.
BLOCKING_DOTTED = frozenset({
    "time.sleep", "select.select", "subprocess.run",
    "subprocess.check_call", "subprocess.check_output",
})

#: Unresolved method calls treated as blocking (worker ``.join()``,
#: pipe ``.recv()``, nested ``.acquire()``, event ``.wait()``).
BLOCKING_METHODS = frozenset({"join", "recv", "acquire", "wait"})


# ----------------------------------------------------------------------
# Per-module facts (serialised inside ModuleSummary)
# ----------------------------------------------------------------------
@dataclass
class SpawnSite:
    """One worker spawn: ``threading.Thread(...)`` / ``ctx.Process``."""

    kind: str      #: "thread" | "process"
    target: str    #: encoded target ("self:C.m", "local:f", "lambda",
                   #: "nested:f", "?" or "" when no target= given)
    line: int
    col: int
    func: str      #: qualname of the enclosing function ("" = module)

    def to_dict(self) -> List[object]:
        return [self.kind, self.target, self.line, self.col, self.func]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "SpawnSite":
        return cls(str(d[0]), str(d[1]), int(d[2]), int(d[3]),
                   str(d[4]))


@dataclass
class LockAcquire:
    """One ``with <lock>:`` acquisition, with the locks already held."""

    lock: str                  #: "C._lock" (self attr) or bare name
    line: int
    col: int
    func: str
    held: Tuple[str, ...] = ()

    def to_dict(self) -> List[object]:
        return [self.lock, self.line, self.col, self.func,
                list(self.held)]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "LockAcquire":
        return cls(str(d[0]), int(d[1]), int(d[2]), str(d[3]),
                   tuple(str(h) for h in d[4]))


@dataclass
class MutationSite:
    """One write to ``self.attr`` (assign/augassign/item/method)."""

    attr: str                  #: "Class.attr"
    kind: str                  #: "assign" | "aug" | "item" | "del"
                               #: | "method:<name>"
    line: int
    col: int
    func: str
    locks: Tuple[str, ...] = ()   #: locks held at the write

    def to_dict(self) -> List[object]:
        return [self.attr, self.kind, self.line, self.col, self.func,
                list(self.locks)]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "MutationSite":
        return cls(str(d[0]), str(d[1]), int(d[2]), int(d[3]),
                   str(d[4]), tuple(str(v) for v in d[5]))


@dataclass
class LockedCall:
    """A resolvable call made while holding at least one lock."""

    callee: str                #: encoded callee (callgraph encoding)
    line: int
    col: int
    func: str
    locks: Tuple[str, ...] = ()

    def to_dict(self) -> List[object]:
        return [self.callee, self.line, self.col, self.func,
                list(self.locks)]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "LockedCall":
        return cls(str(d[0]), int(d[1]), int(d[2]), str(d[3]),
                   tuple(str(v) for v in d[4]))


@dataclass
class BlockingCall:
    """A call that blocks the thread, with the locks held at the site."""

    what: str                  #: display form ("time.sleep", ".join()")
    line: int
    col: int
    func: str
    locks: Tuple[str, ...] = ()

    def to_dict(self) -> List[object]:
        return [self.what, self.line, self.col, self.func,
                list(self.locks)]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "BlockingCall":
        return cls(str(d[0]), int(d[1]), int(d[2]), str(d[3]),
                   tuple(str(v) for v in d[4]))


@dataclass
class ModuleConcurrency:
    """All concurrency facts extracted from one module."""

    spawns: List[SpawnSite] = field(default_factory=list)
    acquires: List[LockAcquire] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    #: ``(attr, func)`` read sites, deduplicated.
    reads: List[Tuple[str, str]] = field(default_factory=list)
    locked_calls: List[LockedCall] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    #: attribute ("Class.attr") -> declared guard lock attribute name.
    guards: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"spawns": [s.to_dict() for s in self.spawns],
                "acquires": [a.to_dict() for a in self.acquires],
                "mutations": [m.to_dict() for m in self.mutations],
                "reads": [list(r) for r in self.reads],
                "locked_calls": [c.to_dict()
                                 for c in self.locked_calls],
                "blocking": [b.to_dict() for b in self.blocking],
                "guards": dict(self.guards)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleConcurrency":
        return cls(
            spawns=[SpawnSite.from_dict(s) for s in d["spawns"]],
            acquires=[LockAcquire.from_dict(a) for a in d["acquires"]],
            mutations=[MutationSite.from_dict(m)
                       for m in d["mutations"]],
            reads=[(str(r[0]), str(r[1])) for r in d["reads"]],
            locked_calls=[LockedCall.from_dict(c)
                          for c in d["locked_calls"]],
            blocking=[BlockingCall.from_dict(b)
                      for b in d["blocking"]],
            guards={str(k): str(v)
                    for k, v in d["guards"].items()})


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
class _FunctionConcurrencyScanner:
    """Scan one function body tracking the held-lock stack."""

    def __init__(self, facts: ModuleConcurrency, imports: ImportMap,
                 own_class: Optional[str], qualname: str,
                 lines: Sequence[str], reads: Set[Tuple[str, str]]):
        self.facts = facts
        self.imports = imports
        self.own_class = own_class
        self.qualname = qualname
        self.lines = lines
        self.reads = reads
        self._nested: Set[str] = set()

    def scan(self, node: ast.AST) -> None:
        self._nested = {sub.name for sub in ast.walk(node)
                        if isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))
                        and sub is not node}
        self._scan_body(node.body, ())

    # -- statement walk ------------------------------------------------
    def _scan_body(self, stmts: Sequence[ast.stmt],
                   locks: Tuple[str, ...]) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, locks)

    def _scan_stmt(self, stmt: ast.stmt,
                   locks: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def's body runs later, with unknown locks held.
            self._scan_body(stmt.body, ())
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locks
            for item in stmt.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self.facts.acquires.append(LockAcquire(
                        lock=lock, line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                        func=self.qualname, held=inner))
                    inner = inner + (lock,)
                else:
                    self._scan_expr(item.context_expr, locks)
            self._scan_body(stmt.body, inner)
            return
        if isinstance(stmt, ast.Assign):
            self._maybe_guard(stmt, stmt.targets)
            for target in stmt.targets:
                self._mutation_target(target, "assign", locks)
            self._scan_expr(stmt.value, locks)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._maybe_guard(stmt, [stmt.target])
            if stmt.value is not None:
                self._mutation_target(stmt.target, "assign", locks)
                self._scan_expr(stmt.value, locks)
            return
        if isinstance(stmt, ast.AugAssign):
            self._mutation_target(stmt.target, "aug", locks)
            self._scan_expr(stmt.value, locks)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._mutation_target(target, "del", locks)
            return
        # Generic compound/simple statement: recurse into child
        # statement lists with the same locks; scan expressions.
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.stmt):
                self._scan_stmt(value, locks)
            elif isinstance(value, ast.ExceptHandler):
                self._scan_body(value.body, locks)
            elif isinstance(value, ast.expr):
                self._scan_expr(value, locks)

    # -- expressions ---------------------------------------------------
    def _scan_expr(self, expr: ast.expr,
                   locks: Tuple[str, ...]) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._handle_call(sub, locks)
            elif (isinstance(sub, ast.Attribute)
                    and isinstance(sub.ctx, ast.Load)):
                attr = self._self_attr(sub)
                if attr is not None:
                    self.reads.add((attr, self.qualname))

    def _handle_call(self, call: ast.Call,
                     locks: Tuple[str, ...]) -> None:
        spawn = self._spawn_kind(call)
        if spawn is not None:
            self.facts.spawns.append(SpawnSite(
                kind=spawn, target=self._spawn_target(call),
                line=call.lineno, col=call.col_offset,
                func=self.qualname))
        what = self._blocking_what(call)
        if what is not None:
            self.facts.blocking.append(BlockingCall(
                what=what, line=call.lineno, col=call.col_offset,
                func=self.qualname, locks=locks))
        # Mutating method on a self attribute counts as a write.
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS):
            attr = self._self_attr(func.value)
            if attr is not None:
                self.facts.mutations.append(MutationSite(
                    attr=attr, kind=f"method:{func.attr}",
                    line=call.lineno, col=call.col_offset,
                    func=self.qualname, locks=locks))
        if locks:
            callee = self._encode_callee(func)
            if callee is not None:
                self.facts.locked_calls.append(LockedCall(
                    callee=callee, line=call.lineno,
                    col=call.col_offset, func=self.qualname,
                    locks=locks))

    # -- classification helpers ---------------------------------------
    def _self_attr(self, expr: ast.expr) -> Optional[str]:
        """``self.x`` -> ``Class.x`` inside a method, else None."""
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.own_class):
            return f"{self.own_class}.{expr.attr}"
        return None

    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.own_class
                and LOCK_NAME_RE.search(expr.attr)):
            return f"{self.own_class}.{expr.attr}"
        if isinstance(expr, ast.Name) and LOCK_NAME_RE.search(expr.id):
            return expr.id
        return None

    def _mutation_target(self, target: ast.expr, kind: str,
                         locks: Tuple[str, ...]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element, kind, locks)
            return
        if isinstance(target, ast.Starred):
            self._mutation_target(target.value, kind, locks)
            return
        attr: Optional[str] = None
        write_kind = kind
        if isinstance(target, ast.Attribute):
            attr = self._self_attr(target)
        elif isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None and kind == "assign":
                write_kind = "item"
            self._scan_expr(target.slice, locks)
        if attr is not None:
            self.facts.mutations.append(MutationSite(
                attr=attr, kind=write_kind, line=target.lineno,
                col=target.col_offset, func=self.qualname,
                locks=locks))

    def _maybe_guard(self, stmt: ast.stmt,
                     targets: Sequence[ast.expr]) -> None:
        if not (0 < stmt.lineno <= len(self.lines)):
            return
        match = GUARD_RE.search(self.lines[stmt.lineno - 1])
        if match is None:
            return
        for target in targets:
            attr = (self._self_attr(target)
                    if isinstance(target, ast.Attribute) else None)
            if attr is not None:
                self.facts.guards[attr] = match.group(1)

    def _spawn_kind(self, call: ast.Call) -> Optional[str]:
        dotted = self.imports.resolve(call.func)
        if dotted is not None:
            if dotted == "threading.Thread" or \
                    dotted.endswith(".Thread"):
                return "thread"
            if dotted == "multiprocessing.Process" or \
                    dotted.endswith(".Process"):
                return "process"
            return None
        if isinstance(call.func, ast.Attribute):
            if call.func.attr == "Thread":
                return "thread"
            if call.func.attr == "Process":
                return "process"
        return None

    def _spawn_target(self, call: ast.Call) -> str:
        target: Optional[ast.expr] = None
        for keyword in call.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None:
            return ""
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name):
            if target.id in self._nested:
                return f"nested:{target.id}"
            return f"local:{target.id}"
        encoded = self._encode_callee(target)
        return encoded if encoded is not None else "?"

    def _encode_callee(self, func: ast.expr) -> Optional[str]:
        from .callgraph import encode_callee
        return encode_callee(func, self.imports, self.own_class)

    def _blocking_what(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return "open()" if func.id == "open" else None
        dotted = self.imports.resolve(func)
        if dotted is not None:
            return dotted if dotted in BLOCKING_DOTTED else None
        if (isinstance(func, ast.Attribute)
                and func.attr in BLOCKING_METHODS
                and not isinstance(func.value, ast.Constant)):
            return f".{func.attr}()"
        return None


def extract_concurrency(tree: ast.Module, imports: ImportMap,
                        lines: Optional[Sequence[str]] = None,
                        ) -> ModuleConcurrency:
    """Extract every concurrency fact from one parsed module.

    ``lines`` carries the raw source lines; without them guarded-by
    annotations (comments, invisible to the AST) cannot be read, but
    every other fact is still extracted.
    """
    facts = ModuleConcurrency()
    lines = lines or ()
    imap = imports
    reads: Set[Tuple[str, str]] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _FunctionConcurrencyScanner(
                facts, imap, None, node.name, lines, reads)
            scanner.scan(node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    scanner = _FunctionConcurrencyScanner(
                        facts, imap, node.name,
                        f"{node.name}.{item.name}", lines, reads)
                    scanner.scan(item)
                elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                    _class_body_guard(facts, node.name, item, lines)
    facts.reads = sorted(reads)
    return facts


def _class_body_guard(facts: ModuleConcurrency, class_name: str,
                      stmt: ast.stmt,
                      lines: Sequence[str]) -> None:
    """Class-body ``x: T  # repro: guarded-by(_lock)`` declarations."""
    if not (0 < stmt.lineno <= len(lines)):
        return
    match = GUARD_RE.search(lines[stmt.lineno - 1])
    if match is None:
        return
    targets = (stmt.targets if isinstance(stmt, ast.Assign)
               else [stmt.target])
    for target in targets:
        if isinstance(target, ast.Name):
            facts.guards[f"{class_name}.{target.id}"] = match.group(1)


# ----------------------------------------------------------------------
# Whole-program index
# ----------------------------------------------------------------------
FunctionId = Tuple[str, str]       #: (module name, qualname)


@dataclass
class LockEdge:
    """Directed lock-order edge with its first witnessed site."""

    source: str                    #: qualified lock "module:C._lock"
    target: str
    module: str
    line: int
    col: int
    func: str
    via: Optional[str] = None      #: callee qualname for call edges


class ConcurrencyIndex:
    """Cross-module view the REP7xx rules (and ``--locks``) query.

    Built once per analysis run from the per-module facts; memoised on
    the project graph instance so the five rules share one build.
    """

    def __init__(self, project: ProjectGraph,
                 config: AnalysisConfig) -> None:
        self.project = project
        self.config = config
        #: qualified attr -> list of (module, MutationSite)
        self.mutations: Dict[str, List[Tuple[str, MutationSite]]] = {}
        #: qualified attr -> set of FunctionIds that read or write it
        self.accesses: Dict[str, Set[FunctionId]] = {}
        #: qualified attr -> qualified guard lock
        self.guards: Dict[str, str] = {}
        self.spawns: List[Tuple[str, SpawnSite]] = []
        self.worker_reachable: Set[FunctionId] = set()
        self.foreground_reachable: Set[FunctionId] = set()
        self.lock_edges: List[LockEdge] = []
        self._build()

    # -- construction --------------------------------------------------
    def _build(self) -> None:
        project = self.project
        for module in sorted(project.modules):
            facts = project.modules[module].concurrency
            for mutation in facts.mutations:
                attr = f"{module}:{mutation.attr}"
                self.mutations.setdefault(attr, []).append(
                    (module, mutation))
                self.accesses.setdefault(attr, set()).add(
                    (module, mutation.func))
            for attr, func in facts.reads:
                self.accesses.setdefault(f"{module}:{attr}",
                                         set()).add((module, func))
            for attr, lock in facts.guards.items():
                owner = attr.rsplit(".", 1)[0]
                self.guards[f"{module}:{attr}"] = \
                    f"{module}:{owner}.{lock}"
            for spawn in facts.spawns:
                self.spawns.append((module, spawn))
        self.worker_reachable = self._reachable(self._worker_roots())
        self.foreground_reachable = self._reachable(
            self._parse_roots(self.config.concurrency_foreground_roots))
        self._build_lock_graph()

    def _worker_roots(self) -> Set[FunctionId]:
        roots = self._parse_roots(self.config.concurrency_worker_roots)
        for module, spawn in self.spawns:
            if not spawn.target or spawn.target in ("lambda", "?") \
                    or spawn.target.startswith("nested:"):
                continue
            ref = self.project.resolve_call_ref(module, spawn.target)
            if ref is not None:
                roots.add((ref[0], ref[1].qualname))
        return roots

    def _parse_roots(self, specs: Sequence[str]) -> Set[FunctionId]:
        roots: Set[FunctionId] = set()
        for spec in specs:
            module, _, qualname = spec.partition(":")
            summary = self.project.modules.get(module)
            if summary is None:
                continue
            if qualname in summary.functions.functions:
                roots.add((module, qualname))
        return roots

    def _reachable(self, roots: Set[FunctionId]) -> Set[FunctionId]:
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            module, qualname = frontier.pop()
            summary = self.project.modules.get(module)
            if summary is None:
                continue
            info = summary.functions.functions.get(qualname)
            if info is None:
                continue
            for call in info.calls:
                ref = self.project.resolve_call_ref(module, call.callee)
                if ref is None:
                    continue
                fid = (ref[0], ref[1].qualname)
                if fid not in seen:
                    seen.add(fid)
                    frontier.append(fid)
        return seen

    # -- lock graph ----------------------------------------------------
    def _qualify_lock(self, module: str, lock: str) -> str:
        return f"{module}:{lock}"

    def _build_lock_graph(self) -> None:
        project = self.project
        edges: Dict[Tuple[str, str], LockEdge] = {}

        def add_edge(edge: LockEdge) -> None:
            edges.setdefault((edge.source, edge.target), edge)

        # Direct acquires per function, for the transitive closure.
        direct: Dict[FunctionId, Set[str]] = {}
        calls_of: Dict[FunctionId, List[str]] = {}
        for module in sorted(project.modules):
            summary = project.modules[module]
            for acquire in summary.concurrency.acquires:
                fid = (module, acquire.func)
                lock = self._qualify_lock(module, acquire.lock)
                direct.setdefault(fid, set()).add(lock)
                if acquire.held:
                    add_edge(LockEdge(
                        source=self._qualify_lock(module,
                                                  acquire.held[-1]),
                        target=lock, module=module,
                        line=acquire.line, col=acquire.col,
                        func=acquire.func))
            for qualname, info in summary.functions.functions.items():
                calls_of[(module, qualname)] = [c.callee
                                                for c in info.calls]
        # Fixed point: locks a function may acquire transitively.
        trans: Dict[FunctionId, Set[str]] = {
            fid: set(locks) for fid, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for fid, callees in calls_of.items():
                acc = trans.get(fid)
                for callee in callees:
                    ref = project.resolve_call_ref(fid[0], callee)
                    if ref is None:
                        continue
                    sub = trans.get((ref[0], ref[1].qualname))
                    if not sub:
                        continue
                    if acc is None:
                        acc = trans.setdefault(fid, set())
                    before = len(acc)
                    acc |= sub
                    if len(acc) != before:
                        changed = True
        self._transitive_locks = trans
        # Call edges: holding H, calling a function that may acquire L.
        for module in sorted(project.modules):
            summary = project.modules[module]
            for call in summary.concurrency.locked_calls:
                ref = project.resolve_call_ref(module, call.callee)
                if ref is None:
                    continue
                sub = trans.get((ref[0], ref[1].qualname))
                if not sub:
                    continue
                held = self._qualify_lock(module, call.locks[-1])
                for lock in sorted(sub):
                    add_edge(LockEdge(
                        source=held, target=lock, module=module,
                        line=call.line, col=call.col, func=call.func,
                        via=ref[1].qualname))
        self.lock_edges = [edges[key] for key in sorted(edges)]

    def lock_nodes(self) -> List[str]:
        nodes = {e.source for e in self.lock_edges}
        nodes |= {e.target for e in self.lock_edges}
        for module in sorted(self.project.modules):
            for acquire in \
                    self.project.modules[module].concurrency.acquires:
                nodes.add(self._qualify_lock(module, acquire.lock))
        return sorted(nodes)

    def lock_cycles(self) -> List[List[str]]:
        """Lock-order SCCs of size > 1 plus re-acquisition self-loops."""
        adjacency: Dict[str, List[str]] = {n: []
                                           for n in self.lock_nodes()}
        for edge in self.lock_edges:
            adjacency.setdefault(edge.source, []).append(edge.target)
            adjacency.setdefault(edge.target, [])
        cycles = [sorted(scc) for scc in _tarjan(adjacency)
                  if len(scc) > 1]
        for edge in self.lock_edges:
            if edge.source == edge.target:
                cycles.append([edge.source])
        return sorted(cycles)

    def edge_between(self, source: str,
                     target: str) -> Optional[LockEdge]:
        for edge in self.lock_edges:
            if edge.source == source and edge.target == target:
                return edge
        return None

    def may_block(self, fid: FunctionId,
                  _seen: Optional[Set[FunctionId]] = None,
                  ) -> Optional[BlockingCall]:
        """First blocking call reachable from ``fid``, if any."""
        seen = _seen if _seen is not None else set()
        if fid in seen:
            return None
        seen.add(fid)
        summary = self.project.modules.get(fid[0])
        if summary is None:
            return None
        for blocking in summary.concurrency.blocking:
            if blocking.func == fid[1]:
                return blocking
        info = summary.functions.functions.get(fid[1])
        if info is None:
            return None
        for call in info.calls:
            ref = self.project.resolve_call_ref(fid[0], call.callee)
            if ref is None:
                continue
            found = self.may_block((ref[0], ref[1].qualname), seen)
            if found is not None:
                return found
        return None


def concurrency_index(project: ProjectGraph,
                      config: AnalysisConfig) -> ConcurrencyIndex:
    """The (memoised) concurrency index for one analysis run."""
    cached = getattr(project, "_concurrency_index", None)
    if cached is not None and cached.config is config:
        return cached
    index = ConcurrencyIndex(project, config)
    project._concurrency_index = index    # type: ignore[attr-defined]
    return index


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _in_prefixes(key: str, prefixes: Sequence[str]) -> bool:
    return any(key == p or key.startswith(p) for p in prefixes)


@register_graph
class ThreadEscapeRule(GraphRule):
    """Worker/foreground shared attributes must be lock-guarded."""

    id = "REP701"
    title = "thread-escape"
    severity = Severity.ERROR
    description = (
        "an instance attribute reachable from both a worker context "
        "(a threading.Thread / process-worker target and everything "
        "it calls) and the foreground path (the configured entry "
        "points, e.g. NoisyLabelPlatform.submit) is shared mutable "
        "state; mutating it without holding a lock is a data race "
        "that surfaces as nondeterministic verdicts.  Guard the "
        "attribute and declare the contract with '# repro: "
        "guarded-by(<lock>)' (checked by REP702), or noqa with the "
        "single-writer justification.  Scope: "
        "config.concurrency_shared_state_prefixes.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = concurrency_index(project, config)
        workers = index.worker_reachable
        foreground = index.foreground_reachable
        if not workers or not foreground:
            return
        for attr in sorted(index.mutations):
            module = attr.partition(":")[0]
            summary = project.modules.get(module)
            if summary is None or not _in_prefixes(
                    summary.key,
                    config.concurrency_shared_state_prefixes):
                continue
            if attr in index.guards:
                continue           # contract declared; REP702 enforces
            accesses = index.accesses.get(attr, set())
            writers = {(m, s.func) for m, s in index.mutations[attr]}
            shared = ((writers & workers and accesses & foreground)
                      or (writers & foreground and accesses & workers))
            if not shared:
                continue
            local = attr.partition(":")[2]
            for mod, site in index.mutations[attr]:
                if site.locks or site.func.endswith(".__init__"):
                    continue
                yield (mod, site.line, site.col,
                       f"{local} is shared between a worker context "
                       f"and the foreground path but "
                       f"{site.func}() mutates it without holding a "
                       f"lock; guard it and declare '# repro: "
                       f"guarded-by(<lock>)'")


@register_graph
class GuardedByRule(GraphRule):
    """Declared guarded-by contracts hold at every mutation site."""

    id = "REP702"
    title = "guarded-by"
    severity = Severity.ERROR
    description = (
        "an attribute annotated '# repro: guarded-by(_lock)' on its "
        "initialisation line must only ever be mutated inside "
        "'with self._lock:'; __init__ is exempt (the instance is not "
        "yet shared).  The annotation is the documented concurrency "
        "contract — this rule is what keeps it true.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = concurrency_index(project, config)
        for attr in sorted(index.guards):
            guard = index.guards[attr]
            owner = attr.partition(":")[2].rsplit(".", 1)[0]
            for module, site in index.mutations.get(attr, ()):
                if site.func == f"{owner}.__init__":
                    continue
                held = {index._qualify_lock(module, lock)
                        for lock in site.locks}
                if guard in held:
                    continue
                local = attr.partition(":")[2]
                lock_attr = guard.rpartition(".")[2]
                yield (module, site.line, site.col,
                       f"{site.func}() mutates {local} outside its "
                       f"declared guard; the guarded-by({lock_attr}) "
                       f"contract requires 'with self.{lock_attr}:' "
                       f"around every mutation")


@register_graph
class LockOrderRule(GraphRule):
    """The lock-order graph must stay acyclic (and non-reentrant)."""

    id = "REP703"
    title = "lock-order"
    severity = Severity.ERROR
    description = (
        "nested 'with lock:' acquisitions — direct or through calls "
        "made while holding a lock — form a lock-order graph; a cycle "
        "means two threads can each hold one lock of the cycle while "
        "waiting for another, i.e. deadlock.  A self-edge is a "
        "re-acquisition of a held threading.Lock, which deadlocks "
        "immediately (Lock is not reentrant).  Inspect the graph with "
        "'repro deps --locks'.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = concurrency_index(project, config)
        for cycle in index.lock_cycles():
            if len(cycle) == 1:
                edge = index.edge_between(cycle[0], cycle[0])
                if edge is None:
                    continue
                yield (edge.module, edge.line, edge.col,
                       f"lock {cycle[0]} is acquired while already "
                       f"held (threading.Lock is not reentrant): "
                       f"guaranteed deadlock in {edge.func}()")
                continue
            edge = index.edge_between(cycle[0], cycle[1]) \
                or index.edge_between(cycle[1], cycle[0])
            if edge is None:
                continue
            chain = " -> ".join(cycle + [cycle[0]])
            yield (edge.module, edge.line, edge.col,
                   f"lock-order cycle (potential deadlock): {chain}; "
                   f"acquire these locks in one global order")


@register_graph
class ProcessTargetRule(GraphRule):
    """Process-worker targets must be module-level functions."""

    id = "REP704"
    title = "process-target"
    severity = Severity.ERROR
    description = (
        "a process worker's target is pickled and shipped to the "
        "child: lambdas and nested functions fail outright under the "
        "spawn start method, and a bound method drags the entire "
        "instance — locks, threads, live arrays — into the payload "
        "(or into the fork snapshot).  Ship a module-level function "
        "and pass plain data, like updater._process_worker does.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = concurrency_index(project, config)
        for module, spawn in index.spawns:
            if spawn.kind != "process":
                continue
            if spawn.target == "lambda":
                yield (module, spawn.line, spawn.col,
                       "process worker target is a lambda; lambdas "
                       "do not pickle — use a module-level function")
            elif spawn.target.startswith("nested:"):
                name = spawn.target.partition(":")[2]
                yield (module, spawn.line, spawn.col,
                       f"process worker target {name}() is a nested "
                       f"function; it does not pickle under spawn — "
                       f"move it to module level")
            elif spawn.target.startswith("self:"):
                spec = spawn.target.partition(":")[2]
                yield (module, spawn.line, spawn.col,
                       f"process worker target self.{spec.split('.')[-1]} "
                       f"is a bound method; pickling it ships the "
                       f"whole instance (locks, threads, arrays) — "
                       f"use a module-level function taking plain "
                       f"data")


@register_graph
class BlockingUnderLockRule(GraphRule):
    """No sleeping/joining/file I/O while holding a lock."""

    id = "REP705"
    title = "blocking-under-lock"
    severity = Severity.WARNING
    description = (
        "a blocking call (time.sleep, worker .join()/.recv()/.wait(), "
        "open()) made while holding a lock stalls every thread "
        "contending for that lock for the full blocking duration — on "
        "the submit hot path that turns one slow worker into a "
        "platform-wide stall.  Move the blocking call outside the "
        "'with' block (collect under the lock, act after it), as "
        "updater._collect/_abandon_worker do.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = concurrency_index(project, config)
        for module in sorted(project.modules):
            facts = project.modules[module].concurrency
            for blocking in facts.blocking:
                if not blocking.locks:
                    continue
                lock = index._qualify_lock(module, blocking.locks[-1])
                yield (module, blocking.line, blocking.col,
                       f"blocking call {blocking.what} while holding "
                       f"{lock} in {blocking.func}(); release the "
                       f"lock first")
            for call in facts.locked_calls:
                ref = project.resolve_call_ref(module, call.callee)
                if ref is None:
                    continue
                blocking = index.may_block((ref[0], ref[1].qualname))
                if blocking is None:
                    continue
                lock = index._qualify_lock(module, call.locks[-1])
                yield (module, call.line, call.col,
                       f"{call.func}() calls {ref[1].qualname}() "
                       f"while holding {lock}, and it may block "
                       f"({blocking.what} at {ref[0]}:{blocking.line})"
                       f"; release the lock first")


# ----------------------------------------------------------------------
# Lock-graph export (``repro deps --locks``)
# ----------------------------------------------------------------------
def render_locks_text(index: ConcurrencyIndex) -> str:
    """One line per lock-order edge, plus isolated locks."""
    out: List[str] = []
    edge_sources = {e.source for e in index.lock_edges}
    edge_targets = {e.target for e in index.lock_edges}
    for node in index.lock_nodes():
        if node not in edge_sources and node not in edge_targets:
            out.append(node)
    for edge in index.lock_edges:
        via = f" (via {edge.via}())" if edge.via else ""
        out.append(f"{edge.source} -> {edge.target}{via} "
                   f"[{edge.module}:{edge.line}]")
    return "\n".join(out)


def render_locks_dot(index: ConcurrencyIndex) -> str:
    """Graphviz DOT of the lock-order graph; cycle edges red."""
    cycle_nodes = {node for cycle in index.lock_cycles()
                   for node in cycle}
    out = ["digraph repro_locks {", "  rankdir=LR;",
           "  node [shape=box, fontsize=10];"]
    for node in index.lock_nodes():
        style = ', color=red' if node in cycle_nodes else ""
        out.append(f'  "{node}" [label="{node}"{style}];')
    for edge in index.lock_edges:
        label = f"via {edge.via}()" if edge.via else \
            f"{edge.module}:{edge.line}"
        color = ", color=red" if (edge.source in cycle_nodes
                                  and edge.target in cycle_nodes) \
            else ""
        out.append(f'  "{edge.source}" -> "{edge.target}" '
                   f'[label="{label}", fontsize=9{color}];')
    out.append("}")
    return "\n".join(out)
