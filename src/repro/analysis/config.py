"""Repo-specific invariant manifest for :mod:`repro.analysis`.

The rules in :mod:`repro.analysis.rules` are generic AST checks; this
module pins down *which* modules they apply to and which names are
exempt.  Scoping is expressed in **module keys** — the posix path from
the ``repro`` package directory down (``repro/datalake/stream.py``) —
so the checks behave identically regardless of where the checkout or
a test fixture tree lives.

Keeping the manifest in code (rather than ad-hoc comments) is the
point: when someone adds a new stage entry point or a new state file,
the diff that updates this manifest is the reviewable record that the
invariant was considered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: numpy.random attributes that *are* the Generator discipline.
#: Everything else (``seed``, ``rand``, ``shuffle``, ``RandomState``,
#: …) is legacy global-state API and banned outside the allowlist.
NP_RANDOM_ALLOWED: FrozenSet[str] = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "Philox",
})

#: Stage entry points that must open an obs span (or activate a
#: tracer) somewhere in their body: module key -> qualified names.
#: These are the public boundaries PR 1 promised to keep visible to
#: the tracer — and the seams PR 2's fault injector relies on.
TRACED_ENTRY_POINTS: Dict[str, FrozenSet[str]] = {
    "repro/core/enld.py": frozenset({
        "ENLD.initialize", "ENLD.detect", "ENLD.update_model",
    }),
    "repro/core/detector.py": frozenset({
        "FineGrainedDetector.detect",
    }),
    "repro/datalake/platform.py": frozenset({
        "NoisyLabelPlatform.submit",
        "NoisyLabelPlatform.checkpoint",
        "NoisyLabelPlatform.resume",
    }),
    "repro/datalake/ingest.py": frozenset({
        "IngestPipeline.run",
    }),
}

#: The declared layer DAG (REP602), as module-key prefixes -> rank.
#: A module may only import modules of rank <= its own.  Rank 0 is the
#: universal substrate (``obs``, ``analysis``): importable everywhere,
#: allowed to import nothing above itself.  Same-rank imports are
#: allowed (``noise -> nn``); cycles *within* a rank are caught by
#: REP601.  Keys not matching any prefix are outside the contract.
LAYER_RANKS: Dict[str, int] = {
    "repro/obs/": 0,
    "repro/analysis/": 0,
    "repro/nn/": 1,
    "repro/index/": 1,
    "repro/noise/": 1,
    "repro/datasets/": 1,
    "repro/core/": 2,
    "repro/baselines/": 3,
    "repro/eval/": 3,
    "repro/datalake/": 4,
    "repro/experiments/": 5,
    "repro/cli.py": 5,
    "repro/__main__.py": 5,
    "repro/__init__.py": 5,
}

#: Compatibility facades (REP602): ``module:symbol`` -> canonical
#: home.  Importing the symbol *through the facade* from inside the
#: library is a layering violation; the facade exists only so external
#: users' imports keep working.  ``eval.timer`` re-exporting
#: ``Stopwatch`` is the historical ``eval -> obs`` shim from the
#: wall-clock migration (DESIGN.md §10).
FACADE_IMPORTS: Dict[str, str] = {
    "repro.eval.timer:Stopwatch": "repro.obs.clock",
}

#: Foreground entry points for the REP701 thread-escape analysis, as
#: ``dotted.module:Qualified.name``.  Everything reachable from these
#: (via resolvable calls) is "foreground"; everything reachable from a
#: spawn-site target is "worker"; attributes mutated on one side and
#: touched on the other are shared state.  The updater's public
#: surface is listed explicitly because the call encoder cannot see
#: through ``self.update_service.poll()`` (attribute-on-attribute
#: receivers are unresolvable by design).
CONCURRENCY_FOREGROUND_ROOTS: Tuple[str, ...] = (
    "repro.datalake.platform:NoisyLabelPlatform.submit",
    "repro.datalake.platform:NoisyLabelPlatform.update_model",
    "repro.datalake.platform:NoisyLabelPlatform.checkpoint",
    "repro.datalake.platform:NoisyLabelPlatform.resume",
    "repro.datalake.updater:ModelUpdateService.request_update",
    "repro.datalake.updater:ModelUpdateService.run_sync",
    "repro.datalake.updater:ModelUpdateService.poll",
    "repro.datalake.updater:ModelUpdateService.wait",
    "repro.datalake.updater:ModelUpdateService.cancel_pending",
    "repro.datalake.updater:ModelUpdateService.status",
    "repro.datalake.ingest:IngestPipeline.run",
    "repro.datalake.shards:ShardedInventory.add",
    "repro.datalake.shards:ShardedInventory.save",
)

#: Extra worker-context roots (same syntax) beyond what spawn-site
#: target resolution discovers automatically.
CONCURRENCY_WORKER_ROOTS: Tuple[str, ...] = ()

#: The module (by key) that owns the RNG stream-tag registry (REP801):
#: the one place integer tag literals are legal, and the module whose
#: ``StreamTags`` class body is the authoritative name -> value table.
STREAM_TAG_REGISTRY_KEY = "repro/nn/rng.py"

#: Module-key prefixes the REP8xx determinism family polices.  The
#: whole library is in scope: every layer feeds, directly or not, the
#: bit-identical-replay contract.
DETERMINISM_SCOPE_PREFIXES: Tuple[str, ...] = ("repro/",)

#: Module-key prefixes whose instance attributes REP701 polices.
#: Scoped to the layers that actually cross the worker boundary — the
#: nn model internals a worker *clone* trains are thread-private by
#: construction and would only produce noise.
CONCURRENCY_SHARED_STATE_PREFIXES: Tuple[str, ...] = (
    "repro/datalake/",
    "repro/obs/",
    "repro/nn/featurecache.py",
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Scoping knobs for the rule set (defaults match this repo)."""

    #: numpy.random members usable anywhere.
    np_random_allowed: FrozenSet[str] = NP_RANDOM_ALLOWED

    #: Module-key prefixes where even legacy RNG API is tolerated
    #: (none in the library; tests/benchmarks are simply not scanned).
    rng_exempt_prefixes: Tuple[str, ...] = ()

    #: Module-key prefix under atomic-write discipline …
    atomic_scope_prefixes: Tuple[str, ...] = ("repro/datalake/",)
    #: … except the module that *implements* the atomic helpers.
    atomic_exempt_keys: Tuple[str, ...] = (
        "repro/datalake/persistence.py",)

    #: Modules allowed to read wall clocks.  Everything else must go
    #: through :class:`repro.obs.Stopwatch` / the tracer so timing
    #: stays mockable and the work model stays the CI-gated quantity.
    wallclock_allowed_prefixes: Tuple[str, ...] = (
        "repro/obs/", "repro/eval/timer.py",)

    #: Stage entry points that must be traced.
    traced_entry_points: Dict[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(TRACED_ENTRY_POINTS))

    #: Only package ``__init__`` modules get the "public name missing
    #: from __all__" warning; any module with a malformed ``__all__``
    #: gets the error.
    all_export_warning_suffix: str = "__init__.py"

    #: Layer contract for REP602: module-key prefix -> rank; imports
    #: may only point at equal or lower ranks.
    layer_ranks: Dict[str, int] = field(
        default_factory=lambda: dict(LAYER_RANKS))

    #: Compatibility facades for REP602: ``module:symbol`` -> canonical
    #: home the symbol must be imported from inside the library.
    facade_imports: Dict[str, str] = field(
        default_factory=lambda: dict(FACADE_IMPORTS))

    #: Parameter names REP604 treats as Generator-valued: a function
    #: holding an RNG must bind these on every project callee that
    #: declares one with a default (the silent-fallback case).
    rng_param_names: Tuple[str, ...] = ("rng", "generator")

    #: Foreground entry points for REP701 thread-escape analysis.
    concurrency_foreground_roots: Tuple[str, ...] = \
        CONCURRENCY_FOREGROUND_ROOTS

    #: Extra worker-context roots beyond resolved spawn targets.
    concurrency_worker_roots: Tuple[str, ...] = \
        CONCURRENCY_WORKER_ROOTS

    #: Module-key prefixes whose attributes REP701 polices.
    concurrency_shared_state_prefixes: Tuple[str, ...] = \
        CONCURRENCY_SHARED_STATE_PREFIXES

    #: Module key owning the stream-tag registry (REP801).
    stream_tag_registry_key: str = STREAM_TAG_REGISTRY_KEY

    #: Module-key prefixes the REP8xx determinism rules police.
    determinism_scope_prefixes: Tuple[str, ...] = \
        DETERMINISM_SCOPE_PREFIXES


DEFAULT_CONFIG = AnalysisConfig()
