"""Render an :class:`AnalysisResult` as text, JSON or SARIF."""

from __future__ import annotations

from typing import Dict, List

from .findings import AnalysisResult, Finding, Severity
from .rules import GRAPH_RULES, RULES

SARIF_VERSION = "2.1.0"
_TOOL_NAME = "repro-lint"


def render_text(result: AnalysisResult,
                show_suppressed: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    out: List[str] = []
    for finding in result.findings:
        if finding.suppressed is None:
            out.append(finding.format())
        elif show_suppressed:
            out.append(f"{finding.format()} "
                       f"[suppressed: {finding.suppressed}]")
    baselined = sum(1 for f in result.findings
                    if f.suppressed == "baseline")
    noqa = sum(1 for f in result.findings if f.suppressed == "noqa")
    out.append(
        f"{result.files_scanned} files scanned: "
        f"{len(result.errors)} error(s), "
        f"{len(result.warnings)} warning(s), "
        f"{noqa} noqa-suppressed, {baselined} baselined")
    if result.cache_hits or result.cache_misses:
        out.append(f"incremental cache: {result.cache_hits} hit(s), "
                   f"{result.cache_misses} file(s) re-analyzed")
    for fingerprint in result.stale_baseline:
        out.append(f"stale baseline entry: {fingerprint} "
                   f"(run with --write-baseline to prune)")
    return "\n".join(out)


def render_json(result: AnalysisResult) -> Dict[str, object]:
    """JSON-ready dict mirroring the full result."""
    return {
        "files_scanned": result.files_scanned,
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "findings": [f.to_dict() for f in result.findings],
        "stale_baseline": list(result.stale_baseline),
    }


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _sarif_result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "partialFingerprints": {
            "reproLint/v1": finding.fingerprint,
        },
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
    }


def render_sarif(result: AnalysisResult) -> Dict[str, object]:
    """SARIF 2.1.0 log of the *active* findings.

    Suppressed findings are omitted — SARIF consumers (code-scanning
    UIs) should only see what currently fails the gate.
    """
    catalog = {**RULES, **GRAPH_RULES}
    rules = [{
        "id": rule_id,
        "name": cls.title,
        "shortDescription": {"text": cls.title},
        "fullDescription": {"text": cls.description},
        "defaultConfiguration": {"level": _sarif_level(cls.severity)},
    } for rule_id, cls in sorted(catalog.items())]
    return {
        "$schema": ("https://json.schemastore.org/sarif-"
                    f"{SARIF_VERSION}.json"),
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {"name": _TOOL_NAME, "rules": rules}},
            "results": [_sarif_result(f) for f in result.active],
        }],
    }
