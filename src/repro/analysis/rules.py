"""The rule set: each class encodes one repo invariant as an AST check.

Rules are registered in :data:`RULES` (id -> class) via the
:func:`register` decorator and instantiated per run.  A rule's
``check(ctx)`` yields ``(line, col, message)`` tuples; the engine turns
them into :class:`~repro.analysis.findings.Finding` objects, applies
``# repro: noqa[...]`` suppressions and the baseline, and decides the
exit code.

Name resolution is purely syntactic: an :class:`ImportMap` records the
module's import aliases so ``np.random.seed``, ``numpy.random.seed``
and ``from numpy import random as r; r.seed`` all canonicalise to
``numpy.random.seed``.  That is deliberate — the checker must run on
broken or partially-refactored trees where importing the module under
analysis would be unsafe.
"""

from __future__ import annotations

import ast
from typing import (Dict, Iterator, List, Optional, Set, Tuple, Type)

from .config import AnalysisConfig
from .findings import Severity

#: ``(line, col, message)`` triples yielded by rule checks.
RawFinding = Tuple[int, int, str]


class ImportMap:
    """Syntactic import-alias table for one module."""

    def __init__(self, tree: ast.Module):
        #: local alias -> imported module dotted path
        self.modules: Dict[str, str] = {}
        #: local name -> (source module, member name)
        self.members: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import numpy.random`` binds ``numpy``; with an
                    # asname it binds the full dotted module.
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                module = ("." * node.level) + node.module if node.level \
                    else node.module
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.members[local] = (module, alias.name)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of an attribute chain, if resolvable.

        ``np.random.seed`` -> ``numpy.random.seed`` (given ``import
        numpy as np``); ``default_rng`` -> ``numpy.random.default_rng``
        (given ``from numpy.random import default_rng``).  Returns
        ``None`` for chains rooted in locals or calls.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in self.modules:
            parts[0] = self.modules[head]
        elif head in self.members:
            module, member = self.members[head]
            parts[0] = f"{module}.{member}"
        else:
            return None
        return ".".join(parts)


class ModuleContext:
    """Everything a rule may look at for one module."""

    def __init__(self, path: str, key: str, tree: ast.Module,
                 lines: List[str], config: AnalysisConfig):
        self.path = path
        self.key = key
        self.tree = tree
        self.lines = lines
        self.config = config
        self.imports = ImportMap(tree)

    def key_in(self, prefixes: Tuple[str, ...]) -> bool:
        return any(self.key == p or self.key.startswith(p)
                   for p in prefixes)


class Rule:
    """Base class: subclasses set the metadata and implement check."""

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        raise NotImplementedError


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


# ----------------------------------------------------------------------
# RNG discipline
# ----------------------------------------------------------------------
@register
class LegacyRandomRule(Rule):
    """Ban global-state RNG API; Generators must be threaded."""

    id = "REP101"
    title = "rng-legacy"
    severity = Severity.ERROR
    description = (
        "numpy.random legacy API (seed/rand/shuffle/RandomState/…) and "
        "the stdlib random module mutate hidden global state and break "
        "checkpoint/replay determinism; construct a seeded "
        "numpy.random.Generator and pass it down instead.")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if ctx.key_in(ctx.config.rng_exempt_prefixes):
            return
        allowed = ctx.config.np_random_allowed
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random":
                        yield (node.lineno, node.col_offset,
                               "stdlib random imported; thread a seeded "
                               "numpy Generator instead")
            elif isinstance(node, ast.ImportFrom) and node.module:
                module = node.module
                if node.level == 0 and (module == "random"
                                        or module.startswith("random.")):
                    yield (node.lineno, node.col_offset,
                           "stdlib random imported; thread a seeded "
                           "numpy Generator instead")
                elif module in ("numpy.random",):
                    for alias in node.names:
                        if alias.name not in allowed:
                            yield (node.lineno, node.col_offset,
                                   f"numpy.random.{alias.name} is legacy "
                                   f"global-state API")
            elif isinstance(node, ast.Attribute):
                dotted = ctx.imports.resolve(node)
                if dotted is None:
                    continue
                if dotted.startswith("numpy.random."):
                    member = dotted.split(".")[2]
                    if member not in allowed:
                        yield (node.lineno, node.col_offset,
                               f"{dotted} is legacy global-state API; "
                               f"use a threaded Generator")
                elif dotted.startswith("random."):
                    yield (node.lineno, node.col_offset,
                           f"{dotted} uses the stdlib global RNG")


@register
class UnseededGeneratorRule(Rule):
    """``default_rng()`` without a seed is silent nondeterminism."""

    id = "REP102"
    title = "rng-unseeded"
    severity = Severity.ERROR
    description = (
        "numpy.random.default_rng() with no seed draws OS entropy, so "
        "a resumed run diverges from the original; pass an explicit "
        "seed or accept a Generator parameter "
        "(repro.nn.rng.resolve_rng).")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if ctx.key_in(ctx.config.rng_exempt_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve(node.func)
            if dotted != "numpy.random.default_rng":
                continue
            if not node.args and not node.keywords:
                yield (node.lineno, node.col_offset,
                       "unseeded default_rng() is nondeterministic "
                       "across runs; pass a seed or thread a Generator")


# ----------------------------------------------------------------------
# Atomic-write discipline
# ----------------------------------------------------------------------
_WRITE_MODES = set("wax+")


@register
class AtomicWriteRule(Rule):
    """State writes in the datalake go through the atomic helpers."""

    id = "REP201"
    title = "atomic-write"
    severity = Severity.ERROR
    description = (
        "direct writes inside repro.datalake can tear state files on a "
        "crash; route them through persistence.atomic_write_json / "
        "atomic_write_npz / append_journal (temp file + os.replace).")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        cfg = ctx.config
        if not ctx.key_in(cfg.atomic_scope_prefixes):
            return
        if ctx.key in cfg.atomic_exempt_keys:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is None:
                    continue
                if mode == "?" or (_WRITE_MODES & set(mode)):
                    yield (node.lineno, node.col_offset,
                           f"bare open(..., {mode!r}) in the datalake; "
                           f"use the persistence atomic helpers")
                continue
            dotted = ctx.imports.resolve(func)
            if dotted in ("numpy.save", "numpy.savez",
                          "numpy.savez_compressed"):
                yield (node.lineno, node.col_offset,
                       f"{dotted} writes non-atomically; use "
                       f"persistence.atomic_write_npz")
            elif dotted == "json.dump":
                yield (node.lineno, node.col_offset,
                       "json.dump writes non-atomically; use "
                       "persistence.atomic_write_json")

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        """The mode string, ``'?'`` when dynamic, ``None`` when read."""
        mode: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return None              # default 'r'
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value if (_WRITE_MODES & set(mode.value)) \
                else None
        return "?"                   # dynamic mode: flag conservatively


# ----------------------------------------------------------------------
# Tracer discipline
# ----------------------------------------------------------------------
_SPAN_OPENERS = {"trace_span", "use_tracer"}


@register
class TracerSpanRule(Rule):
    """Declared stage entry points must stay visible to the tracer."""

    id = "REP301"
    title = "tracer-span"
    severity = Severity.ERROR
    description = (
        "stage entry points listed in analysis.config."
        "TRACED_ENTRY_POINTS must open an obs span (trace_span) or "
        "activate a tracer (use_tracer) in their body — the spans are "
        "both the perf-smoke gate's unit of account and the fault "
        "injector's seam.  A stale manifest entry is also an error.")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        wanted = ctx.config.traced_entry_points.get(ctx.key)
        if not wanted:
            return
        defs = self._collect_defs(ctx.tree)
        for qualname in sorted(wanted):
            node = defs.get(qualname)
            if node is None:
                yield (1, 0,
                       f"traced entry point {qualname!r} not found in "
                       f"{ctx.key}; update TRACED_ENTRY_POINTS")
                continue
            if not self._opens_span(node):
                yield (node.lineno, node.col_offset,
                       f"{qualname} is a declared stage entry point "
                       f"but never opens an obs span "
                       f"(trace_span/use_tracer)")

    @staticmethod
    def _collect_defs(tree: ast.Module) -> Dict[str, ast.AST]:
        defs: Dict[str, ast.AST] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        defs[f"{node.name}.{item.name}"] = item
        return defs

    @staticmethod
    def _opens_span(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in _SPAN_OPENERS:
                return True
        return False


# ----------------------------------------------------------------------
# Wall-clock discipline
# ----------------------------------------------------------------------
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """Only obs (and its eval.timer facade) may read wall clocks."""

    id = "REP401"
    title = "wall-clock"
    severity = Severity.ERROR
    description = (
        "raw clock reads (time.time/perf_counter/datetime.now) outside "
        "repro.obs / repro.eval.timer scatter unmockable timing through "
        "the pipeline; use repro.obs.Stopwatch or a tracer span, which "
        "also record the deterministic work model.")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if ctx.key_in(ctx.config.wallclock_allowed_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = ctx.imports.resolve(node)
            if dotted in _CLOCK_CALLS:
                yield (node.lineno, node.col_offset,
                       f"{dotted} read outside repro.obs; use "
                       f"repro.obs.Stopwatch or a tracer span")


# ----------------------------------------------------------------------
# API hygiene
# ----------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """Mutable default arguments alias state across calls."""

    id = "REP501"
    title = "mutable-default"
    severity = Severity.ERROR
    description = (
        "list/dict/set default arguments are evaluated once and shared "
        "across calls; default to None (or use dataclasses.field).")

    _MUTABLE_CALLS = {"list", "dict", "set"}

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + list(args.kw_defaults)
            for default in defaults:
                if default is None:
                    continue
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp)):
                    yield (default.lineno, default.col_offset,
                           f"mutable default argument in "
                           f"{node.name}(); use None")
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in self._MUTABLE_CALLS):
                    yield (default.lineno, default.col_offset,
                           f"mutable default argument in "
                           f"{node.name}(); use None")


@register
class DunderAllRule(Rule):
    """``__all__`` must agree with what the module actually binds."""

    id = "REP502"
    title = "all-consistency"
    severity = Severity.ERROR
    description = (
        "every name listed in __all__ must actually be bound in the "
        "module — a phantom export breaks star-imports and the "
        "documented API surface.")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        exported = self._exported(ctx.tree)
        if exported is None:
            return
        names, node = exported
        bound = self._bound_names(ctx.tree)
        for name in names:
            if name not in bound:
                yield (node.lineno, node.col_offset,
                       f"__all__ lists {name!r} but the module never "
                       f"binds it")

    @staticmethod
    def _exported(
            tree: ast.Module) -> Optional[Tuple[List[str], ast.AST]]:
        for node in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value:
                targets, value = [node.target], node.value
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == "__all__"
                        and isinstance(value, (ast.List, ast.Tuple))):
                    names = [e.value for e in value.elts
                             if isinstance(e, ast.Constant)
                             and isinstance(e.value, str)]
                    return names, node
        return None

    @staticmethod
    def _bound_names(tree: ast.Module) -> Set[str]:
        bound: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname
                              or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                # One level of conditional/guarded binding is enough
                # for this codebase (TYPE_CHECKING blocks, optional
                # imports).
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        bound.add(sub.name)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                bound.add(alias.asname or alias.name)
        return bound


@register
class AllCoverageRule(Rule):
    """Public names a package re-exports should appear in __all__."""

    id = "REP503"
    title = "all-coverage"
    severity = Severity.WARNING
    description = (
        "a package __init__ that defines __all__ but re-exports public "
        "names not listed in it creates accidental API surface; list "
        "the name or rename it with a leading underscore.")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not ctx.key.endswith(ctx.config.all_export_warning_suffix):
            return
        exported = DunderAllRule._exported(ctx.tree)
        if exported is None:
            return
        names, _ = exported
        listed = set(names)
        for node in ctx.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                if (not local.startswith("_") and alias.name != "*"
                        and local not in listed):
                    yield (node.lineno, node.col_offset,
                           f"{local!r} is re-exported by this package "
                           f"__init__ but missing from __all__")


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


# ----------------------------------------------------------------------
# REP6xx: whole-program rules (import graph / layering / dataflow)
# ----------------------------------------------------------------------
#: ``(module_name, line, col, message)`` yielded by graph rules.
RawGraphFinding = Tuple[str, int, int, str]


class GraphRule:
    """Whole-program rule: checks the project graph, not one module.

    Graph rules run after every file's summary is available (fresh or
    replayed from the incremental cache) and may relate any module to
    any other.  ``check_project`` yields findings keyed by dotted
    module name; the engine maps them back to paths and applies the
    same noqa/baseline suppression channels as per-file rules.
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_project(self, project: "ProjectGraph",
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        raise NotImplementedError


GRAPH_RULES: Dict[str, Type[GraphRule]] = {}


def register_graph(cls: Type[GraphRule]) -> Type[GraphRule]:
    if cls.id in GRAPH_RULES or cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    GRAPH_RULES[cls.id] = cls
    return cls


def _layer_rank(key: str,
                ranks: Dict[str, int]) -> Optional[int]:
    """Rank of the longest matching key prefix, if any."""
    best: Optional[Tuple[int, int]] = None
    for prefix, rank in ranks.items():
        if key == prefix or key.startswith(prefix):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), rank)
    return best[1] if best else None


@register_graph
class ImportCycleRule(GraphRule):
    """Import cycles make initialisation order a load-bearing accident."""

    id = "REP601"
    title = "import-cycle"
    severity = Severity.ERROR
    description = (
        "modules in an import cycle initialise in whatever order the "
        "first importer happened to trigger — re-export shims and "
        "partially-initialised modules follow.  Break the cycle by "
        "moving the shared piece down a layer.  Type-only "
        "(TYPE_CHECKING) and function-deferred imports are exempt: "
        "they cannot create import-time circularity.")

    def check_project(self, project: "ProjectGraph",
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        for cycle in project.cycles():
            edge = project.edge_between(cycle[0],
                                        cycle[1 % len(cycle)])
            line, col = (edge.line, edge.col) if edge else (1, 0)
            chain = " -> ".join(cycle + [cycle[0]])
            yield (cycle[0], line, col,
                   f"import cycle: {chain}")


@register_graph
class LayeringRule(GraphRule):
    """Imports must respect the declared layer DAG (and facades)."""

    id = "REP602"
    title = "layering"
    severity = Severity.ERROR
    description = (
        "the layer contract (analysis.config.LAYER_RANKS: nn/index/"
        "noise/datasets -> core -> baselines/eval -> datalake -> "
        "experiments/cli, with obs/analysis importable everywhere) "
        "keeps low layers reusable and the dependency graph acyclic "
        "by construction; importing upward, or importing a symbol "
        "through a compatibility facade instead of its canonical "
        "home, violates it.")

    def check_project(self, project: "ProjectGraph",
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        ranks = config.layer_ranks
        for module, summary in sorted(project.modules.items()):
            source_rank = _layer_rank(summary.key, ranks)
            for edge in project.edges.get(module, ()):
                target = project.modules.get(edge.target)
                if target is None:
                    continue
                yield from self._check_facades(module, edge, config)
                if edge.typeonly or source_rank is None:
                    continue
                target_rank = _layer_rank(target.key, ranks)
                if target_rank is None or target_rank <= source_rank:
                    continue
                yield (module, edge.line, edge.col,
                       f"layering violation: {summary.key} (layer "
                       f"{source_rank}) imports {target.key} (layer "
                       f"{target_rank}); dependencies must point "
                       f"down the layer DAG")

    @staticmethod
    def _check_facades(module: str, edge, config: AnalysisConfig,
                       ) -> Iterator[RawGraphFinding]:
        for symbol in edge.names:
            if not symbol:
                continue
            canonical = config.facade_imports.get(
                f"{edge.target}:{symbol}")
            if canonical is None or module == canonical:
                continue
            yield (module, edge.line, edge.col,
                   f"{symbol!r} is imported through the "
                   f"{edge.target} compatibility facade; inside the "
                   f"library import it from {canonical}")


@register_graph
class DeadExportRule(GraphRule):
    """Public exports nobody imports are API surface without users."""

    id = "REP603"
    title = "dead-export"
    severity = Severity.WARNING
    description = (
        "a name listed in a module's __all__ that no other scanned "
        "module imports or references is dead public API — it rots "
        "silently and widens the compatibility surface for free.  "
        "Delete it, underscore it, or grandfather it in the baseline "
        "with a justification (package __init__ re-export hubs are "
        "exempt; references from tests don't count as use).")

    def check_project(self, project: "ProjectGraph",
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        uses = project.symbol_uses()
        for module, summary in sorted(project.modules.items()):
            if summary.is_package:
                continue
            exports = summary.symbols.exports
            if not exports:
                continue
            for name in exports:
                if (module, name) in uses:
                    continue
                yield (module, summary.symbols.exports_line,
                       summary.symbols.exports_col,
                       f"public symbol {name!r} is exported in "
                       f"__all__ but never imported or referenced by "
                       f"another scanned module")


@register_graph
class RngThreadingRule(GraphRule):
    """A held Generator must be threaded into every RNG consumer."""

    id = "REP604"
    title = "rng-threading"
    severity = Severity.ERROR
    description = (
        "a function that accepts or creates a seeded Generator but "
        "calls a project function that declares an optional rng-like "
        "parameter without binding it silently splits the random "
        "stream: the callee falls back to its own default and the "
        "caller's seed no longer controls the draw (call-graph-aware "
        "extension of REP102).  Pass the Generator through, or noqa "
        "with a justification when the callee's randomness is "
        "deliberately independent.")

    def check_project(self, project: "ProjectGraph",
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        rng_names = config.rng_param_names
        for module, summary in sorted(project.modules.items()):
            for function in summary.functions.functions.values():
                if not function.holds_rng:
                    continue
                for call in function.calls:
                    callee = project.resolve_call(module, call.callee)
                    if callee is None:
                        continue
                    param = self._unbound_rng_param(
                        call, callee, rng_names)
                    if param is None:
                        continue
                    yield (module, call.line, call.col,
                           f"{function.qualname} holds a Generator "
                           f"but calls {callee.qualname}() without "
                           f"binding its optional {param!r} "
                           f"parameter; thread the rng through")

    @staticmethod
    def _unbound_rng_param(call, callee,
                           rng_names: Tuple[str, ...]) -> Optional[str]:
        if call.has_star or call.has_kwstar:
            return None            # may bind it dynamically
        for name in rng_names:
            index = callee.param_index(name)
            if index is None or not callee.params[index].has_default:
                continue
            if name in call.kwnames:
                continue
            if call.npos > index:
                continue
            return name
        return None


def all_graph_rules() -> List[GraphRule]:
    """Fresh instances of every registered graph rule, in id order."""
    return [GRAPH_RULES[rule_id]() for rule_id in sorted(GRAPH_RULES)]
