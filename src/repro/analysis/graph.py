"""Whole-program project graph: imports, symbols and call resolution.

:class:`ProjectGraph` is built once per analysis run from the
per-module summaries (:class:`ModuleSummary`), which are themselves
either freshly extracted or replayed from the incremental cache.  It
provides everything the REP6xx rule family and the ``repro deps`` CLI
need:

- a module-level **import graph** with alias and ``__init__``
  re-export resolution (``from . import functional`` edges to the
  submodule, not the package, so intra-package relative imports do not
  read as cycles);
- **strongly connected components** over the runtime edges (type-only
  and function-deferred imports cannot create import-time cycles and
  are excluded, but stay in the graph for display);
- shortest-path **why queries** (``repro deps --why A B``);
- conservative **symbol-origin** resolution following re-export
  chains, and **call resolution** from the per-function call sites to
  project :class:`~repro.analysis.callgraph.FunctionInfo` records.

Resolution is deliberately conservative: anything that cannot be
pinned to a project module or function resolves to ``None`` and never
produces a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from .callgraph import FunctionInfo, ModuleFunctions
from .symbols import (ImportRecord, ModuleSymbols, absolutize,
                      is_package_key, module_name_from_key)

if TYPE_CHECKING:
    from .concurrency import ModuleConcurrency
    from .determinism import ModuleDeterminism


def _empty_concurrency() -> "ModuleConcurrency":
    # Deferred: concurrency.py imports this module at the top level.
    from .concurrency import ModuleConcurrency
    return ModuleConcurrency()


def _empty_determinism() -> "ModuleDeterminism":
    # Deferred: determinism.py imports this module at the top level.
    from .determinism import ModuleDeterminism
    return ModuleDeterminism()


@dataclass
class ModuleSummary:
    """Everything the graph layer keeps for one parsed module."""

    key: str                       #: module key (repro/core/enld.py)
    name: str                      #: dotted name (repro.core.enld)
    is_package: bool
    imports: List[ImportRecord] = field(default_factory=list)
    symbols: ModuleSymbols = field(default_factory=ModuleSymbols)
    functions: ModuleFunctions = field(default_factory=ModuleFunctions)
    concurrency: "ModuleConcurrency" = field(
        default_factory=_empty_concurrency)
    determinism: "ModuleDeterminism" = field(
        default_factory=_empty_determinism)

    def to_dict(self) -> Dict[str, object]:
        return {"key": self.key, "name": self.name,
                "is_package": self.is_package,
                "imports": [r.to_dict() for r in self.imports],
                "symbols": self.symbols.to_dict(),
                "functions": self.functions.to_dict(),
                "concurrency": self.concurrency.to_dict(),
                "determinism": self.determinism.to_dict()}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleSummary":
        from .concurrency import ModuleConcurrency
        from .determinism import ModuleDeterminism
        return cls(key=str(d["key"]), name=str(d["name"]),
                   is_package=bool(d["is_package"]),
                   imports=[ImportRecord.from_dict(r)
                            for r in d["imports"]],
                   symbols=ModuleSymbols.from_dict(d["symbols"]),
                   functions=ModuleFunctions.from_dict(d["functions"]),
                   concurrency=ModuleConcurrency.from_dict(
                       d["concurrency"]),
                   determinism=ModuleDeterminism.from_dict(
                       d["determinism"]))

    @classmethod
    def build(cls, tree, key: str,
              lines: Optional[Sequence[str]] = None) -> "ModuleSummary":
        """Extract a summary from a parsed module.

        ``lines`` carries the raw source lines so the concurrency
        extractor can read ``# repro: guarded-by(...)`` annotations
        (comments are invisible to the AST); without them every other
        fact is still extracted.
        """
        from .rules import ImportMap
        from .callgraph import extract_functions
        from .concurrency import extract_concurrency
        from .determinism import extract_determinism
        from .symbols import extract_symbols

        name = module_name_from_key(key)
        package = is_package_key(key)
        imap = ImportMap(tree)
        imports, symbols = extract_symbols(tree, name, package, imap)
        functions = extract_functions(tree, imap)
        concurrency = extract_concurrency(tree, imap, lines)
        determinism = extract_determinism(tree, imap)
        return cls(key=key, name=name, is_package=package,
                   imports=imports, symbols=symbols,
                   functions=functions, concurrency=concurrency,
                   determinism=determinism)


@dataclass
class Edge:
    """One resolved project-internal import edge."""

    source: str
    target: str
    line: int
    col: int
    #: symbol names imported from ``target`` ('' entry for module-only)
    names: Tuple[str, ...]
    typeonly: bool
    deferred: bool

    @property
    def runtime(self) -> bool:
        """Executed during module import (cycle-relevant)."""
        return not (self.typeonly or self.deferred)


class ProjectGraph:
    """Import graph + symbol tables + call graph over one scan."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.paths: Dict[str, str] = {}        #: module name -> path
        self.edges: Dict[str, List[Edge]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, summaries: List[Tuple[str, ModuleSummary]],
              ) -> "ProjectGraph":
        """Build from ``(path, summary)`` pairs.

        When two files map to the same dotted module name (two
        checkouts scanned together), the first wins and the duplicate
        is ignored — resolution must stay deterministic.
        """
        graph = cls()
        for path, summary in summaries:
            if summary.name in graph.modules:
                continue
            graph.modules[summary.name] = summary
            graph.paths[summary.name] = path
        for name, summary in graph.modules.items():
            graph.edges[name] = list(graph._resolve_imports(summary))
        return graph

    def _resolve_imports(self, summary: ModuleSummary) -> Iterator[Edge]:
        for record in summary.imports:
            if not record.is_from:
                for dotted, _asname in record.names:
                    target = self._deepest_module(dotted)
                    if target is not None and target != summary.name:
                        yield Edge(summary.name, target, record.line,
                                   record.col, ("",),
                                   record.typeonly, record.deferred)
                continue
            base = absolutize(record.level, record.module,
                              summary.name, summary.is_package)
            if base is None:
                continue
            module_names: Dict[str, List[str]] = {}
            for name, _asname in record.names:
                submodule = f"{base}.{name}" if name != "*" else None
                if submodule is not None and submodule in self.modules:
                    # ``from pkg import submodule`` depends on the
                    # submodule, not (only) the package __init__.
                    module_names.setdefault(submodule, []).append("")
                elif base in self.modules:
                    module_names.setdefault(base, []).append(name)
            for target, names in module_names.items():
                if target == summary.name:
                    continue
                yield Edge(summary.name, target, record.line,
                           record.col, tuple(names),
                           record.typeonly, record.deferred)

    def _deepest_module(self, dotted: str) -> Optional[str]:
        """Longest prefix of ``dotted`` that is a scanned module."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def runtime_edges(self) -> Iterator[Edge]:
        for edges in self.edges.values():
            for edge in edges:
                if edge.runtime:
                    yield edge

    def cycles(self) -> List[List[str]]:
        """Import cycles (SCCs of size > 1) over runtime edges.

        Each cycle is rotated to start at its lexicographically
        smallest member; the list is sorted by that member.
        """
        adjacency: Dict[str, List[str]] = {m: [] for m in self.modules}
        for edge in self.runtime_edges():
            adjacency[edge.source].append(edge.target)
        sccs = _tarjan(adjacency)
        cycles = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            ordered = self._order_cycle(sorted(scc), adjacency)
            cycles.append(ordered)
        return sorted(cycles, key=lambda c: c[0])

    @staticmethod
    def _order_cycle(members: List[str],
                     adjacency: Dict[str, List[str]]) -> List[str]:
        """Walk the cycle from its smallest member, for display."""
        member_set = set(members)
        path = [members[0]]
        seen = {members[0]}
        current = members[0]
        while True:
            nexts = sorted(t for t in adjacency.get(current, ())
                           if t in member_set and t not in seen)
            if not nexts:
                break
            current = nexts[0]
            path.append(current)
            seen.add(current)
        # Append any members unreachable by the greedy walk (dense SCC).
        path.extend(m for m in members if m not in seen)
        return path

    def why(self, source: str, target: str,
            runtime_only: bool = True) -> Optional[List[str]]:
        """Shortest import chain from ``source`` to ``target``."""
        if source not in self.modules or target not in self.modules:
            return None
        frontier = [source]
        parents: Dict[str, Optional[str]] = {source: None}
        while frontier:
            nxt: List[str] = []
            for module in frontier:
                for edge in self.edges.get(module, ()):
                    if runtime_only and not edge.runtime:
                        continue
                    if edge.target in parents:
                        continue
                    parents[edge.target] = module
                    if edge.target == target:
                        chain = [target]
                        while chain[-1] != source:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    nxt.append(edge.target)
            frontier = nxt
        return None

    def edge_between(self, source: str,
                     target: str) -> Optional[Edge]:
        """The first (runtime-preferred) edge source -> target."""
        candidates = [e for e in self.edges.get(source, ())
                      if e.target == target]
        if not candidates:
            return None
        candidates.sort(key=lambda e: (not e.runtime, e.line))
        return candidates[0]

    # ------------------------------------------------------------------
    # Symbol + call resolution
    # ------------------------------------------------------------------
    def symbol_origin(self, module: str, name: str,
                      _seen: Optional[Set[Tuple[str, str]]] = None,
                      ) -> Tuple[str, str]:
        """Follow re-export chains to the defining project module.

        Returns the last project-internal ``(module, name)`` hop; when
        the chain leaves the scanned tree the last known hop is
        returned unchanged.
        """
        seen = _seen or set()
        while (module, name) not in seen:
            seen.add((module, name))
            summary = self.modules.get(module)
            if summary is None:
                return module, name
            if name in summary.symbols.defined:
                return module, name
            binding = summary.symbols.bindings.get(name)
            if binding is None:
                return module, name
            level, raw, orig = binding
            base = absolutize(level, raw, summary.name,
                              summary.is_package)
            if base is None:
                return module, name
            submodule = f"{base}.{orig}"
            if submodule in self.modules:
                # The binding is a submodule, not a symbol.
                return module, name
            if base not in self.modules:
                return module, name
            module, name = base, orig
        return module, name

    def resolve_call(self, caller_module: str,
                     callee: str) -> Optional[FunctionInfo]:
        """Resolve an encoded call-site reference to a project function.

        Handles plain functions, ``self`` method calls and class
        instantiation (resolving to ``Class.__init__``).  Returns None
        whenever the target is external or ambiguous.
        """
        ref = self.resolve_call_ref(caller_module, callee)
        return ref[1] if ref is not None else None

    def resolve_call_ref(self, caller_module: str, callee: str,
                         ) -> Optional[Tuple[str, FunctionInfo]]:
        """Like :meth:`resolve_call` but also returns the module the
        function was found in — the concurrency index needs the
        ``(module, qualname)`` pair to walk reachability."""
        kind, _, spec = callee.partition(":")
        if kind == "self":
            info = self._lookup_function(caller_module, spec)
            return (caller_module, info) if info is not None else None
        if kind == "local":
            module, name = self.symbol_origin(caller_module, spec)
            info = self._lookup_function(module, name)
            return (module, info) if info is not None else None
        if kind == "dotted":
            module = self._deepest_module(spec)
            if module is None:
                return None
            rest = spec[len(module):].lstrip(".")
            if not rest or "." in rest:
                return None
            module, name = self.symbol_origin(module, rest)
            info = self._lookup_function(module, name)
            return (module, info) if info is not None else None
        return None

    def _lookup_function(self, module: str,
                         name: str) -> Optional[FunctionInfo]:
        summary = self.modules.get(module)
        if summary is None:
            return None
        info = summary.functions.functions.get(name)
        if info is not None:
            return info
        klass = summary.functions.classes.get(name)
        if klass is not None and klass.init_params is not None:
            return summary.functions.functions.get(f"{name}.__init__")
        return None

    # ------------------------------------------------------------------
    # Symbol-use index (REP603)
    # ------------------------------------------------------------------
    def symbol_uses(self) -> Set[Tuple[str, str]]:
        """Every ``(module, name)`` imported or referenced by *another*
        scanned module.

        Uses are attributed to the direct import target (no chain
        following): a facade's re-export counts as the facade's own use
        of the origin, so a symbol whose only importer is a facade goes
        dead exactly when the facade stops importing it.
        """
        uses: Set[Tuple[str, str]] = set()
        for name, summary in self.modules.items():
            for edge in self.edges.get(name, ()):
                for symbol in edge.names:
                    if symbol:
                        uses.add((edge.target, symbol))
            for level, raw in summary.symbols.stars:
                base = absolutize(level, raw, summary.name,
                                  summary.is_package)
                target = self.modules.get(base) if base else None
                if target is not None and target.name != name:
                    for exported in (target.symbols.exports or ()):
                        uses.add((base, exported))
            for dotted in summary.symbols.attr_refs:
                module = self._deepest_module(dotted)
                if module is None or module == name:
                    continue
                rest = dotted[len(module):].lstrip(".")
                if rest:
                    uses.add((module, rest.split(".")[0]))
        return uses


def _tarjan(adjacency: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC (recursion-free for deep graphs)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(adjacency):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, ())
            for offset in range(child_index, len(children)):
                child = children[offset]
                if child not in index:
                    work[-1] = (node, offset + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
