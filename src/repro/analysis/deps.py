"""``repro deps``: inspect the project import graph.

Thin CLI over :class:`~repro.analysis.graph.ProjectGraph` — the same
graph the REP6xx rules check.  Four views:

- default: a text tree of every scanned module and its
  project-internal imports (type-only and deferred edges annotated);
- ``--format json``: the modules and edge list as a machine-readable
  document;
- ``--format dot``: Graphviz DOT (type-only edges dashed, deferred
  edges dotted), used by ``make graph`` and the CI artifact;
- ``--cycles`` / ``--why A B``: the two queries people actually ask —
  "is anything circular?" (exit 1 when yes) and "why does A depend on
  B?" (exit 1 when it does not).

``--packages`` condenses modules to their package (one dotted level
below ``repro``) before rendering, which is the right zoom level for
checking the layer DAG by eye.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Dict, List, Optional, Tuple

from .engine import iter_python_files_with_roots, module_key
from .graph import Edge, ModuleSummary, ProjectGraph


def build_graph(paths: List[str]) -> ProjectGraph:
    """Parse every module under ``paths`` into a project graph.

    Unparseable files are skipped — ``repro lint`` owns reporting
    syntax errors; the graph works with what it can see.
    """
    summaries: List[Tuple[str, ModuleSummary]] = []
    for path, root in iter_python_files_with_roots(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        summaries.append(
            (path, ModuleSummary.build(tree, module_key(path, root),
                                       lines=source.splitlines())))
    return ProjectGraph.build(summaries)


def _package_of(module: str, depth: int = 2) -> str:
    return ".".join(module.split(".")[:depth])


def condense_to_packages(graph: ProjectGraph,
                         ) -> Dict[str, List[Edge]]:
    """Package-level edge map (self-edges dropped, deduplicated).

    A package edge is runtime as soon as *any* underlying module edge
    is; the annotation flags only survive when every collapsed edge
    carries them.
    """
    merged: Dict[Tuple[str, str], Edge] = {}
    for edges in graph.edges.values():
        for edge in edges:
            source = _package_of(edge.source)
            target = _package_of(edge.target)
            if source == target:
                continue
            prior = merged.get((source, target))
            if prior is None:
                merged[(source, target)] = Edge(
                    source, target, edge.line, edge.col, (),
                    edge.typeonly, edge.deferred)
            else:
                merged[(source, target)] = Edge(
                    source, target, min(prior.line, edge.line),
                    prior.col, (),
                    prior.typeonly and edge.typeonly,
                    prior.deferred and edge.deferred)
    out: Dict[str, List[Edge]] = {}
    for (source, _target), edge in sorted(merged.items()):
        out.setdefault(source, []).append(edge)
    return out


def _edge_map(graph: ProjectGraph,
              packages: bool) -> Dict[str, List[Edge]]:
    if packages:
        return condense_to_packages(graph)
    return {module: sorted(graph.edges.get(module, ()),
                           key=lambda e: (e.target, e.line))
            for module in sorted(graph.modules)}


def _edge_marks(edge: Edge) -> str:
    marks = [m for m, on in (("typeonly", edge.typeonly),
                             ("deferred", edge.deferred)) if on]
    return f" [{', '.join(marks)}]" if marks else ""


def render_tree(graph: ProjectGraph, packages: bool = False) -> str:
    out: List[str] = []
    for module, edges in _edge_map(graph, packages).items():
        out.append(module)
        for edge in edges:
            out.append(f"  -> {edge.target}{_edge_marks(edge)}")
    return "\n".join(out)


def render_deps_json(graph: ProjectGraph,
                     packages: bool = False) -> Dict[str, object]:
    edge_map = _edge_map(graph, packages)
    edges = [{"source": e.source, "target": e.target,
              "line": e.line, "typeonly": e.typeonly,
              "deferred": e.deferred}
             for group in edge_map.values() for e in group]
    modules = (sorted(edge_map) if packages
               else sorted(graph.modules))
    return {"modules": modules, "edges": edges,
            "cycles": graph.cycles()}


def render_dot(graph: ProjectGraph, packages: bool = False) -> str:
    """Graphviz DOT; type-only edges dashed, deferred dotted."""
    out = ["digraph repro {", "  rankdir=LR;",
           "  node [shape=box, fontsize=10];"]
    for module, edges in _edge_map(graph, packages).items():
        if not edges:
            out.append(f'  "{module}";')
        for edge in edges:
            style = ""
            if edge.typeonly:
                style = ' [style=dashed, label="type-only"]'
            elif edge.deferred:
                style = ' [style=dotted, label="deferred"]'
            out.append(f'  "{module}" -> "{edge.target}"{style};')
    out.append("}")
    return "\n".join(out)


def add_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``deps`` subcommand on the repro CLI."""
    p = sub.add_parser(
        "deps",
        help="inspect the project import graph (repro.analysis)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files/directories to scan (default: src)")
    p.add_argument("--format", choices=["text", "json", "dot"],
                   default="text", help="output format")
    p.add_argument("--packages", action="store_true",
                   help="condense modules to packages before "
                        "rendering")
    p.add_argument("--cycles", action="store_true",
                   help="list runtime import cycles; exit 1 when any "
                        "exist")
    p.add_argument("--why", nargs=2, metavar=("SOURCE", "TARGET"),
                   help="shortest runtime import chain from SOURCE "
                        "to TARGET; exit 1 when there is none")
    p.add_argument("--locks", action="store_true",
                   help="render the REP703 lock-order graph instead "
                        "of the import graph (text or dot); exit 1 "
                        "when it has a cycle")
    p.set_defaults(fn=cmd_deps)


def cmd_deps(args: argparse.Namespace) -> int:
    graph = build_graph(args.paths)
    if args.locks:
        from .concurrency import (concurrency_index,
                                  render_locks_dot, render_locks_text)
        from .config import DEFAULT_CONFIG
        index = concurrency_index(graph, DEFAULT_CONFIG)
        if args.format == "dot":
            print(render_locks_dot(index))
        else:
            print(render_locks_text(index))
        return 1 if index.lock_cycles() else 0
    if args.cycles:
        cycles = graph.cycles()
        if not cycles:
            print("no import cycles")
            return 0
        for cycle in cycles:
            print(" -> ".join(cycle + [cycle[0]]))
        return 1
    if args.why:
        source, target = args.why
        for module in (source, target):
            if module not in graph.modules:
                print(f"error: {module} is not a scanned module",
                      file=sys.stderr)
                return 2
        chain = graph.why(source, target)
        if chain is None:
            print(f"{source} does not import {target} "
                  f"(directly or transitively)")
            return 1
        print(" -> ".join(chain))
        return 0
    if args.format == "json":
        print(json.dumps(render_deps_json(graph, args.packages),
                         indent=2))
    elif args.format == "dot":
        print(render_dot(graph, args.packages))
    else:
        print(render_tree(graph, args.packages))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.deps``)."""
    parser = argparse.ArgumentParser(prog="repro-deps")
    sub = parser.add_subparsers(dest="command", required=True)
    add_parser(sub)
    args = parser.parse_args(["deps", *(argv if argv is not None
                                        else sys.argv[1:])])
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
