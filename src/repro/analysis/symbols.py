"""Per-module symbol and import extraction for whole-program analysis.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a
time; the REP6xx graph rules need a *summary* of every module that is
cheap to keep in memory and cheap to serialise into the incremental
cache (:mod:`repro.analysis.cache`).  This module extracts that
summary's symbol half:

- :class:`ImportRecord` — one ``import``/``from`` statement with its
  resolution inputs (level, raw module, bound names) and two context
  flags: *typeonly* (inside ``if TYPE_CHECKING:``, never executed at
  runtime) and *deferred* (inside a function body, executed after
  module init — such imports cannot create import-time cycles);
- :class:`ModuleSymbols` — top-level bindings, ``from``-import
  bindings (the re-export table), ``__all__``, star imports, and every
  dotted attribute reference the import map can resolve (used by
  REP603 to count cross-module symbol uses).

Everything here is purely syntactic and JSON-serialisable; nothing is
imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .rules import ImportMap


def module_name_from_key(key: str) -> str:
    """Dotted module name for a module key.

    ``repro/core/enld.py`` -> ``repro.core.enld``;
    ``repro/__init__.py`` -> ``repro``; a bare ``scratch.py`` ->
    ``scratch``.
    """
    parts = key.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(p for p in parts if p)


def is_package_key(key: str) -> bool:
    """Whether the key names a package ``__init__`` module."""
    return key.endswith("__init__.py")


@dataclass
class ImportRecord:
    """One import statement, with enough context to resolve later."""

    line: int
    col: int
    level: int                      #: 0 for absolute imports
    module: str                     #: raw dotted module ('' for `from . import x`)
    #: bound names as (name, asname-or-None); ('*', None) for stars;
    #: for plain ``import a.b`` the single name is the dotted path.
    names: Tuple[Tuple[str, Optional[str]], ...]
    is_from: bool
    typeonly: bool = False
    deferred: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col, "level": self.level,
                "module": self.module,
                "names": [list(n) for n in self.names],
                "is_from": self.is_from, "typeonly": self.typeonly,
                "deferred": self.deferred}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ImportRecord":
        return cls(line=int(d["line"]), col=int(d["col"]),
                   level=int(d["level"]), module=str(d["module"]),
                   names=tuple((n[0], n[1]) for n in d["names"]),
                   is_from=bool(d["is_from"]),
                   typeonly=bool(d["typeonly"]),
                   deferred=bool(d["deferred"]))


@dataclass
class ModuleSymbols:
    """Symbol-table summary of one module."""

    #: names bound by top-level defs/classes/assignments (not imports)
    defined: Tuple[str, ...] = ()
    #: ``from``-import bindings: local name -> (level, raw module,
    #: original name) — the re-export table REP603/facade checks walk.
    bindings: Dict[str, Tuple[int, str, str]] = field(default_factory=dict)
    #: ``__all__`` names, or None when the module defines no __all__.
    exports: Optional[Tuple[str, ...]] = None
    exports_line: int = 0
    exports_col: int = 0
    #: star imports as (level, raw module) pairs.
    stars: Tuple[Tuple[int, str], ...] = ()
    #: resolved dotted attribute references (``repro.nn.train.fit``)
    attr_refs: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"defined": list(self.defined),
                "bindings": {k: list(v)
                             for k, v in self.bindings.items()},
                "exports": (list(self.exports)
                            if self.exports is not None else None),
                "exports_line": self.exports_line,
                "exports_col": self.exports_col,
                "stars": [list(s) for s in self.stars],
                "attr_refs": list(self.attr_refs)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleSymbols":
        exports = d["exports"]
        return cls(defined=tuple(d["defined"]),
                   bindings={k: (int(v[0]), str(v[1]), str(v[2]))
                             for k, v in d["bindings"].items()},
                   exports=(tuple(exports)
                            if exports is not None else None),
                   exports_line=int(d["exports_line"]),
                   exports_col=int(d["exports_col"]),
                   stars=tuple((int(s[0]), str(s[1]))
                               for s in d["stars"]),
                   attr_refs=tuple(d["attr_refs"]))


def absolutize(level: int, module: str, own_module: str,
               own_is_package: bool) -> Optional[str]:
    """Absolute dotted base module of a (possibly relative) import.

    For ``from ..obs import add_work`` in ``repro.nn.train``:
    ``absolutize(2, "obs", "repro.nn.train", False)`` ->
    ``repro.obs``.  Returns None when the relative import escapes the
    top of the package tree.
    """
    if level == 0:
        return module
    # level 1 anchors at the containing package.
    parts = own_module.split(".")
    if not own_is_package:
        parts = parts[:-1]
    up = level - 1
    if up > len(parts):
        return None
    if up:
        parts = parts[:-up]
    if module:
        parts = parts + module.split(".")
    return ".".join(parts) if parts else None


class _SymbolVisitor(ast.NodeVisitor):
    """Collect imports (with context flags) and top-level bindings."""

    def __init__(self) -> None:
        self.imports: List[ImportRecord] = []
        self.defined: List[str] = []
        self.bindings: Dict[str, Tuple[int, str, str]] = {}
        self.stars: List[Tuple[int, str]] = []
        self.exports: Optional[Tuple[str, ...]] = None
        self.exports_line = 0
        self.exports_col = 0
        self._depth = 0            # function nesting depth
        self._typeonly = 0         # TYPE_CHECKING nesting depth

    # -- context tracking ------------------------------------------------
    def _visit_function(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            self._typeonly += 1
            for child in node.body:
                self.visit(child)
            self._typeonly -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.append(ImportRecord(
            line=node.lineno, col=node.col_offset, level=0, module="",
            names=tuple((a.name, a.asname) for a in node.names),
            is_from=False, typeonly=self._typeonly > 0,
            deferred=self._depth > 0))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        self.imports.append(ImportRecord(
            line=node.lineno, col=node.col_offset, level=node.level,
            module=module,
            names=tuple((a.name, a.asname) for a in node.names),
            is_from=True, typeonly=self._typeonly > 0,
            deferred=self._depth > 0))
        if self._depth == 0:
            for alias in node.names:
                if alias.name == "*":
                    self.stars.append((node.level, module))
                else:
                    local = alias.asname or alias.name
                    self.bindings[local] = (node.level, module,
                                            alias.name)

    # -- top-level bindings ---------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                self.defined.append(child.name)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            self.defined.append(sub.id)
                self._maybe_all(child.targets, child.value, child)
            elif isinstance(child, ast.AnnAssign):
                if isinstance(child.target, ast.Name):
                    self.defined.append(child.target.id)
                if child.value is not None:
                    self._maybe_all([child.target], child.value, child)
            self.visit(child)

    def _maybe_all(self, targets: List[ast.expr], value: ast.expr,
                   node: ast.stmt) -> None:
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == "__all__"
                    and isinstance(value, (ast.List, ast.Tuple))):
                self.exports = tuple(
                    e.value for e in value.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str))
                self.exports_line = node.lineno
                self.exports_col = node.col_offset


def extract_symbols(tree: ast.Module, own_module: str,
                    own_is_package: bool,
                    imports_map: Optional[ImportMap] = None,
                    ) -> Tuple[List[ImportRecord], ModuleSymbols]:
    """Extract the import records and symbol summary for one module."""
    visitor = _SymbolVisitor()
    visitor.visit(tree)
    imports_map = imports_map or ImportMap(tree)
    attr_refs = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = imports_map.resolve(node)
            if dotted is None:
                continue
            if dotted.startswith("."):
                # Relative member import (e.g. ``from .rng import
                # resolve_rng`` canonicalises to ``.rng.resolve_rng``);
                # anchor it at the containing package.
                level = len(dotted) - len(dotted.lstrip("."))
                base = absolutize(level, "", own_module, own_is_package)
                if base is None:
                    continue
                dotted = base + "." + dotted.lstrip(".")
            attr_refs.add(dotted)
    symbols = ModuleSymbols(
        defined=tuple(dict.fromkeys(visitor.defined)),
        bindings=visitor.bindings,
        exports=visitor.exports,
        exports_line=visitor.exports_line,
        exports_col=visitor.exports_col,
        stars=tuple(visitor.stars),
        attr_refs=tuple(sorted(attr_refs)))
    return visitor.imports, symbols
