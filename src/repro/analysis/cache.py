"""Incremental analysis cache: content-digest keyed, stored on disk.

Whole-program analysis re-parses every module, which would make warm
``repro lint`` runs pay the full cold cost on every invocation.  The
cache stores, per file, the SHA-256 of its content plus the two
expensive products of parsing it: the per-file rule findings (after
``noqa`` suppression, which only depends on the file's own text) and
the :class:`~repro.analysis.graph.ModuleSummary` the graph layer
consumes.  A warm run re-reads file bytes (needed for the digest
anyway) but skips ``ast.parse`` and the per-file rule pass for every
unchanged file; the REP6xx graph rules always re-run over the (cheap)
summaries because their findings depend on *other* modules.

Invalidation: the store is keyed by a schema version, a digest of the
:class:`~repro.analysis.config.AnalysisConfig` and the rule catalog —
editing the config or adding a rule invalidates everything; editing
one file invalidates only that file.  The store lives under
``.repro-analysis/`` (gitignored) and is written atomically
(temp file + ``os.replace``), so a killed run never leaves a torn
cache behind.  A corrupt or stale-version cache file reads as empty.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from .config import AnalysisConfig
from .findings import Finding, Severity
from .graph import ModuleSummary

#: Bump when the cached summary/finding schema (or any rule's logic)
#: changes in a way older entries cannot represent.
#: v2: ModuleSummary gained the ``concurrency`` facts (REP7xx).
#: v3: ModuleSummary gained the ``determinism`` facts (REP8xx).
CACHE_SCHEMA_VERSION = 3

#: Default cache directory, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".repro-analysis"

_CACHE_FILENAME = "cache.json"


def _jsonable(value: object) -> object:
    """Deterministic JSON form for config fields (sets sorted)."""
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v)
                for k, v in sorted(value.items(), key=lambda i: str(i[0]))}
    return value


def config_digest(config: AnalysisConfig) -> str:
    """Stable digest of the analysis config + rule catalog."""
    from .rules import GRAPH_RULES, RULES

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "config": {f.name: _jsonable(getattr(config, f.name))
                   for f in dataclasses.fields(config)},
        "rules": sorted(RULES) + sorted(GRAPH_RULES),
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def content_digest(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def _finding_to_dict(finding: Finding) -> Dict[str, object]:
    return {"rule": finding.rule, "severity": finding.severity.value,
            "path": finding.path, "key": finding.key,
            "line": finding.line, "col": finding.col,
            "message": finding.message,
            "source_line": finding.source_line,
            "suppressed": finding.suppressed,
            "occurrence": finding.occurrence}


def _finding_from_dict(d: Dict[str, object]) -> Finding:
    return Finding(rule=str(d["rule"]),
                   severity=Severity(d["severity"]),
                   path=str(d["path"]), key=str(d["key"]),
                   line=int(d["line"]), col=int(d["col"]),
                   message=str(d["message"]),
                   source_line=str(d["source_line"]),
                   suppressed=d["suppressed"],
                   occurrence=int(d["occurrence"]))


class AnalysisCache:
    """Digest-keyed store of per-file findings and module summaries."""

    def __init__(self, directory: str, config: AnalysisConfig):
        self.directory = directory
        self.path = os.path.join(directory, _CACHE_FILENAME)
        self.config_key = config_digest(config)
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return
        if payload.get("config") != self.config_key:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._entries = files

    def lookup(self, path: str, digest: str, key: str,
               ) -> Optional[Tuple[List[Finding],
                                   Optional[ModuleSummary]]]:
        """Cached ``(findings, summary)`` for an unchanged file.

        ``key`` must match the stored module key: the same file
        scanned under a different root keys (and fingerprints)
        differently, so the entry cannot be replayed.
        """
        entry = self._entries.get(os.path.abspath(path))
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        if entry.get("key") != key:
            return None
        try:
            findings = [_finding_from_dict(d)
                        for d in entry["findings"]]
            raw_summary = entry["summary"]
            summary = (ModuleSummary.from_dict(raw_summary)
                       if raw_summary is not None else None)
        except (KeyError, TypeError, ValueError):
            return None
        return findings, summary

    def store(self, path: str, digest: str, key: str,
              findings: List[Finding],
              summary: Optional[ModuleSummary]) -> None:
        self._entries[os.path.abspath(path)] = {
            "digest": digest,
            "key": key,
            "findings": [_finding_to_dict(f) for f in findings],
            "summary": summary.to_dict() if summary else None,
        }
        self._dirty = True

    def prune(self, live_paths: List[str]) -> None:
        """Drop entries for files no longer in the scan set."""
        live = {os.path.abspath(p) for p in live_paths}
        dead = [p for p in self._entries if p not in live]
        for path in dead:
            del self._entries[path]
        if dead:
            self._dirty = True

    def save(self) -> None:
        """Atomically persist the store (no-op when unchanged)."""
        if not self._dirty:
            return
        payload = {"schema": CACHE_SCHEMA_VERSION,
                   "config": self.config_key,
                   "files": self._entries}
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   suffix=".cache.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False
