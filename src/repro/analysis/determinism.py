"""Whole-program determinism analysis (the REP8xx family).

The platform's headline claim — concurrent ingestion and async
retraining produce verdicts **bit-identical** to serial replay — rests
on a handful of hand-maintained invariants: derived RNG streams keyed
by globally unique tags, no unordered iteration feeding persisted
state, nothing pickle-hostile crossing a process boundary, every
failed hot-swap rolled back, and no wall-clock/pid/address entropy
leaking into RNG keys or checkpoints.  Each of those broke (or nearly
broke) during a past scaling PR; this module checks them statically:

REP801 **stream-tag registry**
    Every integer tag in a seed-derivation key (``default_rng([seed,
    TAG, ...])`` / ``SeedSequence(spawn_key=...)`` / ``reseed(seed +
    TAG * n)``) must be spelled ``STREAM_TAGS.<NAME>`` from the
    central :data:`repro.nn.rng.STREAM_TAGS` registry — inline
    literals and module-local constants re-create the comment-based
    namespace that let two call sites collide; registry values must
    be globally unique.
REP802 **unordered iteration**
    Iterating a ``set`` (or an un-``sorted()`` dict view, or a
    filesystem listing) in a loop whose body writes the journal, a
    checkpoint, or derives an RNG key makes the persisted order
    depend on hash seeding / completion order; sort first.
REP803 **pickle-boundary purity**
    Values shipped through ``executor.submit(...)`` / ``conn.send(...)``
    / ``ProcessPoolExecutor(initargs=...)`` must be plain data:
    lambdas, generators, nested functions, bare ``self``, locks and
    tracers in the payload either fail to pickle under spawn or drag
    live state across the boundary (extends REP704 from worker
    *targets* to worker *payloads*).
REP804 **snapshot/restore pairing**
    A function that captures ``snapshot_swap_state()`` and then calls
    a swap-scoped mutator (``install_update``, directly or through
    project calls) must do so inside a ``try`` whose exception path
    reaches ``restore_swap_state`` — otherwise a mid-swap failure
    leaves the platform half-updated.
REP805 **nondeterminism sources**
    ``os.getpid`` / ``threading.get_ident`` / ``id()`` /
    ``uuid.uuid4`` / wall clocks flowing (directly or through one
    local) into a journal write, checkpoint, or RNG key make replay
    runs diverge by construction.

Extraction happens per module at parse time into the JSON-serialisable
:class:`ModuleDeterminism` carried by each
:class:`~repro.analysis.graph.ModuleSummary`, so the facts replay from
the incremental cache like every other summary field; the rules run as
whole-program :class:`~repro.analysis.rules.GraphRule` passes over a
shared :class:`DeterminismIndex` (registry table + two call-graph
fixed points).  Resolution is conservative in the REP6xx/REP7xx way: a
tag, call or payload that cannot be pinned down never produces a
finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from .config import AnalysisConfig
from .findings import Severity
from .graph import ProjectGraph
from .rules import (GraphRule, ImportMap, RawGraphFinding,
                    register_graph)

#: Resolved callables whose first list argument is a SeedSequence
#: entropy key (``[seed, TAG, ...]``).
SEED_KEY_FACTORIES = frozenset({
    "numpy.random.default_rng", "numpy.random.SeedSequence",
})

#: Attribute marker naming the registry instance in a resolved
#: reference (``repro.nn.rng.STREAM_TAGS.DETECT``).
REGISTRY_ATTR = "STREAM_TAGS"

#: Class whose body defines the registry fields.
REGISTRY_CLASS = "StreamTags"

#: Method name re-rolling a platform RNG from scalar arithmetic
#: (``enld.reseed(seed + TAG * attempt)``).
RESEED_METHOD = "reseed"

#: Call names that persist state or derive an RNG stream — the sinks
#: REP802/REP805 protect.  Matched on the call's terminal name, so
#: both ``append_journal(...)`` and ``persistence.append_journal(...)``
#: count.
SINK_CALLEES = frozenset({
    "append_journal", "atomic_write_json", "atomic_write_npz",
    "save_checkpoint", "default_rng", "SeedSequence", "reseed",
})

#: Swap-state capture/rollback pair (REP804) and the mutators that
#: must stay inside the protected region.
SNAPSHOT_NAME = "snapshot_swap_state"
RESTORE_NAME = "restore_swap_state"
SWAP_MUTATORS = frozenset({"install_update"})

#: Nondeterminism sources by resolved dotted path (REP805).  Wall
#: clocks are included here but exempted inside
#: ``config.wallclock_allowed_prefixes`` at check time.
NONDET_DOTTED = frozenset({
    "os.getpid", "threading.get_ident", "uuid.uuid4",
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: Wall-clock source prefixes (config-exemptable subset of the above).
WALLCLOCK_PREFIXES = ("time.", "datetime.")

#: Receiver names treated as process-pool executors / pipe ends.
EXECUTOR_RE = re.compile(r"(^|_)(executor|pool)s?$")
PIPE_RE = re.compile(r"(^|_)(conn|connection|pipe)s?$")

#: Attribute names that smuggle live state through a pickle boundary.
LOCKISH_RE = re.compile(
    r"(^|_)(r?lock|mutex|sem(aphore)?|cond(ition)?|thread|event)s?$")
TRACERISH_RE = re.compile(r"(^|_)tracers?$")


# ----------------------------------------------------------------------
# Per-module facts (serialised inside ModuleSummary)
# ----------------------------------------------------------------------
@dataclass
class TagUse:
    """One value in the tag slot of a seed-derivation expression."""

    kind: str      #: "lit" | "const" | "ref"
    value: int     #: literal / constant value (0 for refs)
    name: str      #: constant name or resolved dotted ref ("" for lit)
    context: str   #: "key" (entropy list) | "scalar" (reseed arith)
    line: int
    col: int
    func: str

    def to_dict(self) -> List[object]:
        return [self.kind, self.value, self.name, self.context,
                self.line, self.col, self.func]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "TagUse":
        return cls(str(d[0]), int(d[1]), str(d[2]), str(d[3]),
                   int(d[4]), int(d[5]), str(d[6]))


@dataclass
class RegistryTag:
    """One field of the ``StreamTags`` registry class body."""

    name: str
    value: int
    line: int
    col: int

    def to_dict(self) -> List[object]:
        return [self.name, self.value, self.line, self.col]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "RegistryTag":
        return cls(str(d[0]), int(d[1]), int(d[2]), int(d[3]))


@dataclass
class UnorderedIter:
    """A ``for`` loop over an unordered (or order-unstable) iterable."""

    kind: str                   #: "set" | "dict-view" | "fs"
    desc: str                   #: display form (".items()", "set(...)")
    line: int
    col: int
    func: str
    #: sink callee names invoked directly in the loop body
    sinks: Tuple[str, ...] = ()
    #: encoded project callees invoked in the loop body
    callees: Tuple[str, ...] = ()

    def to_dict(self) -> List[object]:
        return [self.kind, self.desc, self.line, self.col, self.func,
                list(self.sinks), list(self.callees)]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "UnorderedIter":
        return cls(str(d[0]), str(d[1]), int(d[2]), int(d[3]),
                   str(d[4]), tuple(str(s) for s in d[5]),
                   tuple(str(c) for c in d[6]))


@dataclass
class BoundaryPayload:
    """One pickle-hostile value crossing a process boundary."""

    channel: str               #: "submit" | "send" | "initargs"
    kind: str                  #: "lambda" | "generator" | "nested"
                               #: | "self" | "lock" | "tracer"
    desc: str                  #: display form of the offending value
    line: int
    col: int
    func: str

    def to_dict(self) -> List[object]:
        return [self.channel, self.kind, self.desc, self.line,
                self.col, self.func]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "BoundaryPayload":
        return cls(str(d[0]), str(d[1]), str(d[2]), int(d[3]),
                   int(d[4]), str(d[5]))


@dataclass
class SwapSnapshot:
    """One ``snapshot_swap_state()`` capture and what follows it."""

    line: int
    col: int
    func: str
    #: a restore call exists somewhere later in the function
    has_restore: bool = False
    #: post-snapshot calls outside any restore-protected try:
    #: ``(display, encoded_callee_or_empty, line, col)``
    exposed: Tuple[Tuple[str, str, int, int], ...] = ()

    def to_dict(self) -> List[object]:
        return [self.line, self.col, self.func, self.has_restore,
                [list(e) for e in self.exposed]]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "SwapSnapshot":
        return cls(int(d[0]), int(d[1]), str(d[2]), bool(d[3]),
                   tuple((str(e[0]), str(e[1]), int(e[2]), int(e[3]))
                         for e in d[4]))


@dataclass
class NondetFlow:
    """A nondeterminism source flowing into a persisted/RNG sink."""

    source: str                #: "os.getpid", "id()", "time.time", …
    sink: str                  #: sink callee name
    via: str                   #: tainted local name ("" for direct)
    line: int
    col: int
    func: str

    def to_dict(self) -> List[object]:
        return [self.source, self.sink, self.via, self.line, self.col,
                self.func]

    @classmethod
    def from_dict(cls, d: Sequence[object]) -> "NondetFlow":
        return cls(str(d[0]), str(d[1]), str(d[2]), int(d[3]),
                   int(d[4]), str(d[5]))


@dataclass
class ModuleDeterminism:
    """All determinism facts extracted from one module."""

    tag_uses: List[TagUse] = field(default_factory=list)
    registry_tags: List[RegistryTag] = field(default_factory=list)
    unordered: List[UnorderedIter] = field(default_factory=list)
    payloads: List[BoundaryPayload] = field(default_factory=list)
    snapshots: List[SwapSnapshot] = field(default_factory=list)
    flows: List[NondetFlow] = field(default_factory=list)
    #: qualnames that call a swap mutator / a sink directly (seeds of
    #: the index's call-graph fixed points).
    mutator_callers: List[str] = field(default_factory=list)
    sink_callers: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"tag_uses": [t.to_dict() for t in self.tag_uses],
                "registry_tags": [r.to_dict()
                                  for r in self.registry_tags],
                "unordered": [u.to_dict() for u in self.unordered],
                "payloads": [p.to_dict() for p in self.payloads],
                "snapshots": [s.to_dict() for s in self.snapshots],
                "flows": [f.to_dict() for f in self.flows],
                "mutator_callers": list(self.mutator_callers),
                "sink_callers": list(self.sink_callers)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleDeterminism":
        return cls(
            tag_uses=[TagUse.from_dict(t) for t in d["tag_uses"]],
            registry_tags=[RegistryTag.from_dict(r)
                           for r in d["registry_tags"]],
            unordered=[UnorderedIter.from_dict(u)
                       for u in d["unordered"]],
            payloads=[BoundaryPayload.from_dict(p)
                      for p in d["payloads"]],
            snapshots=[SwapSnapshot.from_dict(s)
                       for s in d["snapshots"]],
            flows=[NondetFlow.from_dict(f) for f in d["flows"]],
            mutator_callers=[str(m) for m in d["mutator_callers"]],
            sink_callers=[str(s) for s in d["sink_callers"]])


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _call_name(func: ast.expr) -> Optional[str]:
    """Terminal name of a call target (``a.b.c()`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _FunctionDeterminismScanner:
    """Scan one function body for every REP8xx fact."""

    def __init__(self, facts: ModuleDeterminism, imports: ImportMap,
                 own_class: Optional[str], qualname: str,
                 module_consts: Dict[str, int]):
        self.facts = facts
        self.imports = imports
        self.own_class = own_class
        self.qualname = qualname
        self.module_consts = module_consts
        self._nested: Set[str] = set()
        self._tainted: Set[str] = set()
        self._snapshots: List[SwapSnapshot] = []
        self._exposed: List[Tuple[str, str, int, int]] = []
        self._saw_restore = False

    def scan(self, node: ast.AST) -> None:
        self._nested = {sub.name for sub in ast.walk(node)
                        if isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))
                        and sub is not node}
        self._scan_body(node.body, protected=False)
        for snap in self._snapshots:
            snap.has_restore = self._saw_restore
            snap.exposed = tuple(self._exposed)
            self.facts.snapshots.append(snap)

    # -- statement walk ------------------------------------------------
    def _scan_body(self, stmts: Sequence[ast.stmt],
                   protected: bool) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, protected)

    def _scan_stmt(self, stmt: ast.stmt, protected: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return                      # nested defs scanned separately
        if isinstance(stmt, ast.Try):
            inner = protected or self._try_restores(stmt)
            self._scan_body(stmt.body, inner)
            for handler in stmt.handlers:
                self._scan_body(handler.body, protected)
            self._scan_body(stmt.orelse, protected)
            self._scan_body(stmt.finalbody, protected)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._handle_for(stmt, protected)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_exprs([stmt.value], protected)
            self._propagate_taint(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._scan_exprs([stmt.value], protected)
            self._propagate_taint([stmt.target], stmt.value)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, protected)
            elif isinstance(child, ast.ExceptHandler):
                self._scan_body(child.body, protected)
            elif isinstance(child, ast.withitem):
                self._scan_exprs([child.context_expr], protected)
            elif isinstance(child, ast.expr):
                self._scan_exprs([child], protected)

    def _try_restores(self, stmt: ast.Try) -> bool:
        """True when an except/finally path calls the restore."""
        for region in (*stmt.handlers, *stmt.finalbody):
            for sub in ast.walk(region):
                if (isinstance(sub, ast.Call)
                        and _call_name(sub.func) == RESTORE_NAME):
                    return True
        return False

    # -- expressions ---------------------------------------------------
    def _scan_exprs(self, exprs: Sequence[ast.expr],
                    protected: bool) -> None:
        for expr in exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    self._handle_call(sub, protected)

    def _handle_call(self, call: ast.Call, protected: bool) -> None:
        name = _call_name(call.func)
        if name == SNAPSHOT_NAME:
            self._snapshots.append(SwapSnapshot(
                line=call.lineno, col=call.col_offset,
                func=self.qualname))
            return
        if name == RESTORE_NAME:
            if self._snapshots:
                self._saw_restore = True
            return
        self._tag_uses(call, name)
        self._boundary_payloads(call, name)
        if name in SWAP_MUTATORS:
            self.facts.mutator_callers.append(self.qualname)
        if name in SINK_CALLEES:
            self.facts.sink_callers.append(self.qualname)
            self._sink_flows(call, name)
        if self._snapshots and not protected:
            self._expose(call, name)

    def _expose(self, call: ast.Call, name: Optional[str]) -> None:
        """Record a post-snapshot call outside the protected region."""
        if name in SWAP_MUTATORS:
            self._exposed.append((name, "", call.lineno,
                                  call.col_offset))
            return
        encoded = self._encode_callee(call.func)
        if encoded is not None:
            self._exposed.append((name or encoded, encoded,
                                  call.lineno, call.col_offset))

    # -- REP801 facts --------------------------------------------------
    def _tag_uses(self, call: ast.Call,
                  name: Optional[str]) -> None:
        dotted = self.imports.resolve(call.func)
        if dotted in SEED_KEY_FACTORIES:
            if call.args and isinstance(call.args[0], ast.List):
                elts = call.args[0].elts
                if len(elts) >= 2:
                    self._classify_tag(elts[1], "key")
            for keyword in call.keywords:
                if (keyword.arg == "spawn_key"
                        and isinstance(keyword.value,
                                       (ast.List, ast.Tuple))):
                    for elt in keyword.value.elts:
                        self._classify_tag(elt, "key")
        elif name == RESEED_METHOD:
            for arg in call.args:
                if isinstance(arg, ast.Constant):
                    continue       # plain reseed(seed) has no tag slot
                for sub in ast.walk(arg):
                    self._classify_scalar_tag(sub)

    def _classify_tag(self, elt: ast.expr, context: str) -> None:
        if (isinstance(elt, ast.Constant)
                and isinstance(elt.value, int)
                and not isinstance(elt.value, bool)):
            self.facts.tag_uses.append(TagUse(
                "lit", elt.value, "", context, elt.lineno,
                elt.col_offset, self.qualname))
            return
        if isinstance(elt, ast.Name):
            value = self.module_consts.get(elt.id)
            if value is not None:
                self.facts.tag_uses.append(TagUse(
                    "const", value, elt.id, context, elt.lineno,
                    elt.col_offset, self.qualname))
            return
        if isinstance(elt, ast.Attribute):
            dotted = self.imports.resolve(elt)
            if dotted is not None and f"{REGISTRY_ATTR}." in dotted:
                self.facts.tag_uses.append(TagUse(
                    "ref", 0, dotted, context, elt.lineno,
                    elt.col_offset, self.qualname))

    def _classify_scalar_tag(self, node: ast.AST) -> None:
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)
                and node.value > 1):
            self.facts.tag_uses.append(TagUse(
                "lit", node.value, "", "scalar", node.lineno,
                node.col_offset, self.qualname))
        elif (isinstance(node, ast.Name)
                and node.id in self.module_consts):
            self.facts.tag_uses.append(TagUse(
                "const", self.module_consts[node.id], node.id,
                "scalar", node.lineno, node.col_offset,
                self.qualname))
        elif isinstance(node, ast.Attribute):
            dotted = self.imports.resolve(node)
            if dotted is not None and f"{REGISTRY_ATTR}." in dotted:
                self.facts.tag_uses.append(TagUse(
                    "ref", 0, dotted, "scalar", node.lineno,
                    node.col_offset, self.qualname))

    # -- REP802 facts --------------------------------------------------
    def _handle_for(self, stmt: ast.stmt, protected: bool) -> None:
        classified = self._classify_iter(stmt.iter)
        self._scan_exprs([stmt.iter], protected)
        if classified is None:
            self._scan_body(stmt.body, protected)
            self._scan_body(stmt.orelse, protected)
            return
        kind, desc = classified
        sinks: List[str] = []
        callees: List[str] = []
        for sub in ast.walk(ast.Module(body=list(stmt.body),
                                       type_ignores=[])):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_name(sub.func)
            if name in SINK_CALLEES:
                sinks.append(name)
            encoded = self._encode_callee(sub.func)
            if encoded is not None:
                callees.append(encoded)
        self.facts.unordered.append(UnorderedIter(
            kind=kind, desc=desc, line=stmt.iter.lineno,
            col=stmt.iter.col_offset, func=self.qualname,
            sinks=tuple(dict.fromkeys(sinks)),
            callees=tuple(dict.fromkeys(callees))))
        self._scan_body(stmt.body, protected)
        self._scan_body(stmt.orelse, protected)

    def _classify_iter(self, iterable: ast.expr,
                       ) -> Optional[Tuple[str, str]]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            return "set", "a set literal"
        if not isinstance(iterable, ast.Call):
            return None
        func = iterable.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return "set", f"{func.id}(...)"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        dotted = self.imports.resolve(func)
        if dotted in ("os.listdir", "os.scandir"):
            return "fs", dotted
        if func.attr in ("keys", "values", "items"):
            return "dict-view", f".{func.attr}()"
        if func.attr in ("iterdir", "glob", "rglob"):
            return "fs", f".{func.attr}()"
        return None

    # -- REP803 facts --------------------------------------------------
    def _boundary_payloads(self, call: ast.Call,
                           name: Optional[str]) -> None:
        channel: Optional[str] = None
        payload: List[ast.expr] = []
        if (name == "submit" and isinstance(call.func, ast.Attribute)
                and self._receiver_matches(call.func.value,
                                           EXECUTOR_RE)):
            channel = "submit"
            payload = list(call.args[1:]) \
                + [kw.value for kw in call.keywords]
        elif (name == "send" and isinstance(call.func, ast.Attribute)
                and self._receiver_matches(call.func.value, PIPE_RE)):
            channel = "send"
            payload = list(call.args)
        else:
            dotted = self.imports.resolve(call.func)
            if ((dotted is not None
                    and dotted.endswith("ProcessPoolExecutor"))
                    or name == "ProcessPoolExecutor"):
                channel = "initargs"
                payload = [kw.value for kw in call.keywords
                           if kw.arg == "initargs"]
        if channel is None:
            return
        for expr in payload:
            self._classify_payload(expr, channel)

    def _receiver_matches(self, expr: ast.expr,
                          pattern: "re.Pattern[str]") -> bool:
        if isinstance(expr, ast.Name):
            return bool(pattern.search(expr.id))
        if isinstance(expr, ast.Attribute):
            return bool(pattern.search(expr.attr))
        return False

    def _classify_payload(self, expr: ast.expr, channel: str) -> None:
        for sub in ast.walk(expr):
            bad: Optional[Tuple[str, str]] = None
            if isinstance(sub, ast.Lambda):
                bad = ("lambda", "a lambda")
            elif isinstance(sub, ast.GeneratorExp):
                bad = ("generator", "a generator expression")
            elif isinstance(sub, ast.Name):
                if sub.id == "self":
                    bad = ("self", "the bound instance (self)")
                elif sub.id in self._nested:
                    bad = ("nested", f"nested function {sub.id}()")
                elif LOCKISH_RE.search(sub.id):
                    bad = ("lock", f"lock-like object {sub.id!r}")
                elif TRACERISH_RE.search(sub.id):
                    bad = ("tracer", f"tracer {sub.id!r}")
            elif isinstance(sub, ast.Attribute):
                if LOCKISH_RE.search(sub.attr):
                    bad = ("lock", f"lock-like attribute .{sub.attr}")
                elif TRACERISH_RE.search(sub.attr):
                    bad = ("tracer", f"tracer attribute .{sub.attr}")
            if bad is not None:
                self.facts.payloads.append(BoundaryPayload(
                    channel=channel, kind=bad[0], desc=bad[1],
                    line=sub.lineno, col=sub.col_offset,
                    func=self.qualname))

    # -- REP805 facts --------------------------------------------------
    def _propagate_taint(self, targets: Sequence[ast.expr],
                         value: ast.expr) -> None:
        source = self._first_source(value)
        tainted_by = source or next(
            (f"local {n.id!r}" for n in ast.walk(value)
             if isinstance(n, ast.Name) and n.id in self._tainted),
            None)
        if tainted_by is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self._tainted.add(target.id)

    def _first_source(self, expr: ast.expr) -> Optional[str]:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            if (isinstance(sub.func, ast.Name)
                    and sub.func.id == "id" and len(sub.args) == 1):
                return "id()"
            dotted = self.imports.resolve(sub.func)
            if dotted in NONDET_DOTTED:
                return dotted
        return None

    def _sink_flows(self, call: ast.Call, sink: str) -> None:
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            source = self._first_source(arg)
            if source is not None:
                self.facts.flows.append(NondetFlow(
                    source=source, sink=sink, via="",
                    line=call.lineno, col=call.col_offset,
                    func=self.qualname))
                continue
            for sub in ast.walk(arg):
                if (isinstance(sub, ast.Name)
                        and sub.id in self._tainted):
                    self.facts.flows.append(NondetFlow(
                        source="a nondeterministic value", sink=sink,
                        via=sub.id, line=call.lineno,
                        col=call.col_offset, func=self.qualname))
                    break

    # -- shared helpers ------------------------------------------------
    def _encode_callee(self, func: ast.expr) -> Optional[str]:
        from .callgraph import encode_callee
        return encode_callee(func, self.imports, self.own_class)


def _module_consts(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int>`` constants (tag-candidate table)."""
    consts: Dict[str, int] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and not isinstance(node.value.value, bool)):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    consts[target.id] = node.value.value
    return consts


def _registry_tags(tree: ast.Module) -> List[RegistryTag]:
    """Fields of a ``StreamTags`` class body, if this module has one."""
    tags: List[RegistryTag] = []
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef)
                and node.name == REGISTRY_CLASS):
            continue
        for item in node.body:
            name: Optional[str] = None
            value: Optional[ast.expr] = None
            if (isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)):
                name, value = item.target.id, item.value
            elif (isinstance(item, ast.Assign) and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Name)):
                name, value = item.targets[0].id, item.value
            if (name is not None and isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)):
                tags.append(RegistryTag(name, value.value,
                                        item.lineno, item.col_offset))
    return tags


def extract_determinism(tree: ast.Module,
                        imports: ImportMap) -> ModuleDeterminism:
    """Extract every determinism fact from one parsed module."""
    facts = ModuleDeterminism()
    facts.registry_tags = _registry_tags(tree)
    consts = _module_consts(tree)

    def scan_function(node: ast.AST, own_class: Optional[str],
                      qualname: str) -> None:
        scanner = _FunctionDeterminismScanner(
            facts, imports, own_class, qualname, consts)
        scanner.scan(node)
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef,
                                ast.AsyncFunctionDef)):
                scan_function(sub, own_class,
                              f"{qualname}.{sub.name}")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, None, node.name)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    scan_function(item, node.name,
                                  f"{node.name}.{item.name}")
    facts.mutator_callers = sorted(set(facts.mutator_callers))
    facts.sink_callers = sorted(set(facts.sink_callers))
    return facts


# ----------------------------------------------------------------------
# Whole-program index
# ----------------------------------------------------------------------
FunctionId = Tuple[str, str]       #: (module name, qualname)


class DeterminismIndex:
    """Cross-module view the REP8xx rules query.

    Holds the registry table (name -> value) plus two call-graph
    fixed points: the set of functions that transitively call a swap
    mutator, and the set that transitively reach a persisted/RNG sink.
    Built once per analysis run and memoised on the project graph so
    the five rules share one build.
    """

    def __init__(self, project: ProjectGraph,
                 config: AnalysisConfig) -> None:
        self.project = project
        self.config = config
        #: registry field name -> value (from the configured module)
        self.registry: Dict[str, int] = {}
        #: registry module name ("" when the registry is not scanned)
        self.registry_module: str = ""
        self.mutator_reaching: Set[FunctionId] = set()
        self.sink_reaching: Set[FunctionId] = set()
        self._build()

    def _build(self) -> None:
        project = self.project
        mutator_seeds: Set[FunctionId] = set()
        sink_seeds: Set[FunctionId] = set()
        for module in sorted(project.modules):
            summary = project.modules[module]
            facts = summary.determinism
            if summary.key == self.config.stream_tag_registry_key:
                self.registry_module = module
                for tag in facts.registry_tags:
                    self.registry.setdefault(tag.name, tag.value)
            for qualname in facts.mutator_callers:
                mutator_seeds.add((module, qualname))
            for qualname in facts.sink_callers:
                sink_seeds.add((module, qualname))
        self.mutator_reaching = self._callers_closure(mutator_seeds)
        self.sink_reaching = self._callers_closure(sink_seeds)

    def _callers_closure(self, seeds: Set[FunctionId],
                         ) -> Set[FunctionId]:
        """Fixed point: functions reaching ``seeds`` through calls."""
        project = self.project
        reaching = set(seeds)
        changed = True
        while changed:
            changed = False
            for module in project.modules:
                summary = project.modules[module]
                for qualname, info in \
                        summary.functions.functions.items():
                    fid = (module, qualname)
                    if fid in reaching:
                        continue
                    for call in info.calls:
                        ref = project.resolve_call_ref(module,
                                                       call.callee)
                        if ref is None:
                            continue
                        if (ref[0], ref[1].qualname) in reaching:
                            reaching.add(fid)
                            changed = True
                            break
        return reaching

    def reaches_mutator(self, module: str, callee: str) -> bool:
        ref = self.project.resolve_call_ref(module, callee)
        return (ref is not None
                and (ref[0], ref[1].qualname) in self.mutator_reaching)

    def reaches_sink(self, module: str, callee: str) -> bool:
        ref = self.project.resolve_call_ref(module, callee)
        return (ref is not None
                and (ref[0], ref[1].qualname) in self.sink_reaching)


def determinism_index(project: ProjectGraph,
                      config: AnalysisConfig) -> DeterminismIndex:
    """The (memoised) determinism index for one analysis run."""
    cached = getattr(project, "_determinism_index", None)
    if cached is not None and cached.config is config:
        return cached
    index = DeterminismIndex(project, config)
    project._determinism_index = index    # type: ignore[attr-defined]
    return index


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _in_scope(key: str, prefixes: Sequence[str]) -> bool:
    return any(key == p or key.startswith(p) for p in prefixes)


@register_graph
class StreamTagRegistryRule(GraphRule):
    """Every RNG stream tag comes from STREAM_TAGS and is unique."""

    id = "REP801"
    title = "stream-tag-registry"
    severity = Severity.ERROR
    description = (
        "the tag slot of a derived-stream key (default_rng([seed, "
        "TAG, ...]), SeedSequence(spawn_key=...), reseed(seed + TAG * "
        "n)) must be spelled STREAM_TAGS.<NAME> from the central "
        "repro.nn.rng registry: inline literals and module-local "
        "constants recreate the comment-maintained tag namespace "
        "whose collisions silently correlate streams the "
        "bit-identical-replay contract needs independent.  Registry "
        "values must also be globally unique (enforced here and at "
        "import time).")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = determinism_index(project, config)
        yield from self._registry_duplicates(project, config)
        for module in sorted(project.modules):
            summary = project.modules[module]
            if not _in_scope(summary.key,
                             config.determinism_scope_prefixes):
                continue
            if summary.key == config.stream_tag_registry_key:
                continue           # the registry defines, not uses
            for use in summary.determinism.tag_uses:
                yield from self._check_use(module, use, index)

    @staticmethod
    def _registry_duplicates(project: ProjectGraph,
                             config: AnalysisConfig,
                             ) -> Iterator[RawGraphFinding]:
        for module in sorted(project.modules):
            summary = project.modules[module]
            if summary.key != config.stream_tag_registry_key:
                continue
            seen: Dict[int, str] = {}
            for tag in summary.determinism.registry_tags:
                other = seen.get(tag.value)
                if other is not None:
                    yield (module, tag.line, tag.col,
                           f"stream tag {tag.name} reuses value "
                           f"{tag.value} already assigned to {other}; "
                           f"registry values must be globally unique")
                else:
                    seen[tag.value] = tag.name

    def _check_use(self, module: str, use: TagUse,
                   index: DeterminismIndex,
                   ) -> Iterator[RawGraphFinding]:
        if use.kind == "lit":
            yield (module, use.line, use.col,
                   f"inline stream tag {use.value} in a "
                   f"seed-derivation {self._ctx(use)} in {use.func}(); "
                   f"register it in repro.nn.rng.STREAM_TAGS and "
                   f"spell it STREAM_TAGS.<NAME>")
        elif use.kind == "const":
            yield (module, use.line, use.col,
                   f"module-local stream tag {use.name} (= "
                   f"{use.value}) in a seed-derivation "
                   f"{self._ctx(use)} in {use.func}(); move it into "
                   f"repro.nn.rng.STREAM_TAGS")
        elif use.kind == "ref":
            member = use.name.rpartition(f"{REGISTRY_ATTR}.")[2]
            if index.registry and member not in index.registry:
                yield (module, use.line, use.col,
                       f"STREAM_TAGS.{member} is not a registered "
                       f"stream tag; add it to the StreamTags "
                       f"registry in repro.nn.rng")

    @staticmethod
    def _ctx(use: TagUse) -> str:
        return ("entropy key" if use.context == "key"
                else "reseed expression")


@register_graph
class UnorderedIterationRule(GraphRule):
    """No unordered iteration feeding persisted state or RNG keys."""

    id = "REP802"
    title = "unordered-iteration"
    severity = Severity.ERROR
    description = (
        "iterating a set, an un-sorted() dict view, or a filesystem "
        "listing in a loop that writes the journal / a checkpoint or "
        "derives an RNG key makes the persisted order depend on hash "
        "seeding, insertion (completion) order, or directory order — "
        "serial and concurrent replays then journal different byte "
        "streams.  Wrap the iterable in sorted(...); dict views are "
        "flagged only when a sink is called directly in the loop "
        "body, sets and fs listings also through project calls.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = determinism_index(project, config)
        for module in sorted(project.modules):
            summary = project.modules[module]
            if not _in_scope(summary.key,
                             config.determinism_scope_prefixes):
                continue
            for it in summary.determinism.unordered:
                sink = it.sinks[0] if it.sinks else None
                via = None
                if sink is None and it.kind in ("set", "fs"):
                    via = next(
                        (c for c in it.callees
                         if index.reaches_sink(module, c)), None)
                if sink is None and via is None:
                    continue
                how = (f"calls {sink}()" if sink is not None
                       else f"reaches a persistence/RNG sink via "
                            f"{via.rpartition(':')[2]}()")
                yield (module, it.line, it.col,
                       f"{it.func}() iterates {it.desc} (unordered) "
                       f"in a loop that {how}; iterate "
                       f"sorted(...) so replayed runs persist an "
                       f"identical order")


@register_graph
class PickleBoundaryRule(GraphRule):
    """Only plain data crosses process boundaries."""

    id = "REP803"
    title = "pickle-boundary"
    severity = Severity.ERROR
    description = (
        "a value shipped through executor.submit(...), conn.send(...) "
        "or ProcessPoolExecutor(initargs=...) is pickled into the "
        "worker: lambdas, generator expressions and nested functions "
        "fail outright under spawn, and self / locks / tracers drag "
        "live unpicklable state (or a whole instance) across the "
        "boundary.  Ship ndarrays, primitives and frozen dataclasses "
        "— like updater._process_payload does (extends REP704 from "
        "worker targets to worker payloads).")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        channels = {"submit": "executor.submit(...)",
                    "send": "conn.send(...)",
                    "initargs": "ProcessPoolExecutor initargs"}
        for module in sorted(project.modules):
            summary = project.modules[module]
            if not _in_scope(summary.key,
                             config.determinism_scope_prefixes):
                continue
            for payload in summary.determinism.payloads:
                yield (module, payload.line, payload.col,
                       f"{payload.func}() ships {payload.desc} "
                       f"through {channels[payload.channel]}; only "
                       f"plain data (ndarrays, primitives, frozen "
                       f"dataclasses) may cross the pickle boundary")


@register_graph
class SwapPairingRule(GraphRule):
    """snapshot_swap_state is paired with an exception-path restore."""

    id = "REP804"
    title = "swap-pairing"
    severity = Severity.ERROR
    description = (
        "a function that captures snapshot_swap_state() and then "
        "mutates swap-scoped state (install_update, directly or "
        "through project calls) must wrap the mutation in a try whose "
        "except/finally path calls restore_swap_state — otherwise a "
        "mid-swap failure leaves θ/P̃/inventories half-updated and "
        "every later verdict diverges from replay.  Follow the "
        "updater._install() pattern: snapshot, try-mutate-publish, "
        "except rollback-and-raise.")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        index = determinism_index(project, config)
        for module in sorted(project.modules):
            summary = project.modules[module]
            if not _in_scope(summary.key,
                             config.determinism_scope_prefixes):
                continue
            for snap in summary.determinism.snapshots:
                yield from self._check_snapshot(module, snap, index)

    @staticmethod
    def _check_snapshot(module: str, snap: SwapSnapshot,
                        index: DeterminismIndex,
                        ) -> Iterator[RawGraphFinding]:
        for display, encoded, line, col in snap.exposed:
            direct = display in SWAP_MUTATORS
            if not direct and not (
                    encoded
                    and index.reaches_mutator(module, encoded)):
                continue
            what = (f"{display}()" if direct
                    else f"{display.rpartition(':')[2]}() (which "
                         f"reaches a swap mutator)")
            tail = ("restore_swap_state is never called on the "
                    "failure path"
                    if not snap.has_restore else
                    "this call sits outside the try block whose "
                    "except/finally restores")
            yield (module, line, col,
                   f"{snap.func}() calls {what} after "
                   f"snapshot_swap_state() without an exception path "
                   f"to restore_swap_state: {tail}; wrap the "
                   f"mutation in try/except rollback")


@register_graph
class NondetFlowRule(GraphRule):
    """No pid/ident/address/clock entropy in persisted state or keys."""

    id = "REP805"
    title = "nondet-source"
    severity = Severity.ERROR
    description = (
        "os.getpid / threading.get_ident / id() / uuid.uuid4 / wall "
        "clocks are different on every run; feeding one (directly or "
        "through a local) into a journal write, checkpoint payload, "
        "or RNG key makes replay diverge by construction.  Derive "
        "identity from deterministic inputs (sequence numbers, "
        "content digests) instead; wall clocks are exempt inside "
        "config.wallclock_allowed_prefixes (the obs layer).")

    def check_project(self, project: ProjectGraph,
                      config: AnalysisConfig,
                      ) -> Iterator[RawGraphFinding]:
        for module in sorted(project.modules):
            summary = project.modules[module]
            if not _in_scope(summary.key,
                             config.determinism_scope_prefixes):
                continue
            clock_ok = _in_scope(summary.key,
                                 config.wallclock_allowed_prefixes)
            for flow in summary.determinism.flows:
                if clock_ok and flow.source.startswith(
                        WALLCLOCK_PREFIXES):
                    continue
                via = (f" (through local {flow.via!r})"
                       if flow.via else "")
                yield (module, flow.line, flow.col,
                       f"{flow.func}() feeds {flow.source} into "
                       f"{flow.sink}(){via}; nondeterministic "
                       f"sources must not reach persisted state or "
                       f"RNG keys")
