"""Analysis driver: walk files, run rules, apply suppressions.

The engine is what ``repro lint`` executes: it collects ``.py`` files,
parses each once, runs every registered per-file rule over the module
context, extracts a :class:`~repro.analysis.graph.ModuleSummary`, then
runs the whole-program REP6xx rules over the assembled
:class:`~repro.analysis.graph.ProjectGraph`.  Raw findings pass
through the two suppression channels —

- **inline**: ``# repro: noqa[REP101]`` (or a blanket ``# repro:
  noqa``) on the flagged physical line;
- **baseline**: fingerprints recorded in the checked-in baseline file
  (see :mod:`repro.analysis.baseline`).

Suppressed findings stay in the result (marked with *how* they were
silenced) so reports can show them; only *active* findings affect the
exit code.

With ``cache_dir`` set, per-file findings and module summaries are
replayed from the incremental cache (:mod:`repro.analysis.cache`) for
files whose content digest is unchanged — only edited files are
re-parsed.  Graph rules always re-run: their findings depend on other
modules, but they consume only the (cheap) summaries.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import PurePosixPath
from typing import (Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from .cache import AnalysisCache, content_digest
from .config import DEFAULT_CONFIG, AnalysisConfig
from .findings import (SUPPRESSED_BASELINE, AnalysisResult, Finding,
                       Severity)
from .graph import ModuleSummary, ProjectGraph
from .rules import ModuleContext, all_graph_rules, all_rules
# Importing the modules registers the REP7xx / REP8xx graph rules
# (they live in their own modules to keep rules.py free of a
# rules <-> concurrency/determinism import cycle).
from . import concurrency as _concurrency  # noqa: F401
from . import determinism as _determinism  # noqa: F401

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules",
              "build", "dist"}


def module_key(path: str, root: Optional[str] = None) -> str:
    """Stable module key for ``path``, posix-joined.

    Files inside a ``repro`` tree key as the path from the last
    ``repro`` component down: ``src/repro/datalake/stream.py`` and
    ``/tmp/fixtures/repro/datalake/stream.py`` both key as
    ``repro/datalake/stream.py``, which is what rule scoping and
    baseline fingerprints are expressed in.

    Files *outside* a ``repro`` tree key relative to the scan
    ``root`` they were collected under (prefixed with the root's
    basename so sibling roots stay distinct): scanning ``tests``
    keys ``tests/fixtures/a.py`` as ``tests/fixtures/a.py``, not the
    colliding bare ``a.py`` that older versions produced.  Baseline
    migration note: fingerprints for non-``repro`` files recorded
    before this change used the bare filename and must be re-written
    (``repro lint --write-baseline``); in-repo baselines only cover
    ``src/repro`` and are unaffected.  Without a root the bare
    filename is kept for backwards compatibility.
    """
    parts = PurePosixPath(path.replace(os.sep, "/")).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        return "/".join(parts[idx:])
    if root is not None and os.path.isdir(root):
        rel = os.path.relpath(path, root)
        if not rel.startswith(".."):
            rel_posix = rel.replace(os.sep, "/")
            base = os.path.basename(os.path.normpath(root))
            if base in (".", "..", ""):
                return rel_posix
            return f"{base}/{rel_posix}"
    return parts[-1] if parts else path


def iter_python_files_with_roots(paths: Iterable[str],
                                 ) -> Iterator[Tuple[str, str]]:
    """``(file, scan_root)`` for every ``.py`` file under ``paths``.

    Files are yielded sorted and deduplicated; when two roots reach
    the same file, the first root given wins (module keys must be
    deterministic).  Cache/VCS directories are never descended into.
    """
    seen: Dict[str, str] = {}
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                seen.setdefault(path, path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    seen.setdefault(os.path.join(dirpath, name), path)
    for file in sorted(seen):
        yield file, seen[file]


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, skipping caches."""
    for file, _root in iter_python_files_with_roots(paths):
        yield file


def rule_enabled(rule_id: str,
                 rules: Optional[Sequence[str]]) -> bool:
    """True when ``rule_id`` matches the ``--rules`` prefix filter.

    No filter (None/empty) enables everything; REP001 (syntax error)
    is always enabled — a family-scoped run on an unparseable file
    must still say so rather than reporting it clean.
    """
    if not rules or rule_id == "REP001":
        return True
    return any(rule_id.startswith(prefix) for prefix in rules)


def _noqa_rules(line: str) -> Optional[frozenset]:
    """Rules silenced on this line; empty frozenset means *all*."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def _analyze_module(source: str, path: str, key: str,
                    config: AnalysisConfig,
                    rules: Optional[Sequence[str]] = None,
                    ) -> Tuple[List[Finding], Optional[ModuleSummary]]:
    """Per-file pass: findings (post-noqa) plus the module summary."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule="REP001", severity=Severity.ERROR, path=path, key=key,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            source_line=(lines[exc.lineno - 1]
                         if exc.lineno and exc.lineno <= len(lines)
                         else ""))], None
    ctx = ModuleContext(path, key, tree, lines, config)
    findings: List[Finding] = []
    for rule in all_rules():
        if not rule_enabled(rule.id, rules):
            continue
        for line, col, message in rule.check(ctx):
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            findings.append(Finding(
                rule=rule.id, severity=rule.severity, path=path,
                key=key, line=line, col=col, message=message,
                source_line=text))
    _assign_occurrences(findings)
    _apply_noqa(findings, lines)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, ModuleSummary.build(tree, key, lines=lines)


def analyze_source(source: str, path: str,
                   config: Optional[AnalysisConfig] = None,
                   root: Optional[str] = None) -> List[Finding]:
    """Run every per-file rule over one module's source text."""
    config = config or DEFAULT_CONFIG
    findings, _summary = _analyze_module(
        source, path, module_key(path, root), config)
    return findings


def _assign_occurrences(findings: List[Finding]) -> None:
    """Disambiguate identical (rule, key, line-text) fingerprints."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings,
                          key=lambda f: (f.line, f.col, f.rule)):
        ident = (finding.rule, finding.key,
                 finding.source_line.strip())
        finding.occurrence = counts.get(ident, 0)
        counts[ident] = finding.occurrence + 1


def _apply_noqa(findings: List[Finding], lines: List[str]) -> None:
    for finding in findings:
        if not (0 < finding.line <= len(lines)):
            continue
        silenced = _noqa_rules(lines[finding.line - 1])
        if silenced is None:
            continue
        if not silenced or finding.rule in silenced:
            finding.suppressed = "noqa"


def _graph_findings(graph: ProjectGraph, config: AnalysisConfig,
                    file_lines: Dict[str, List[str]],
                    rules: Optional[Sequence[str]] = None,
                    ) -> List[Finding]:
    """Run the whole-program rules over the project graph."""
    findings: List[Finding] = []
    for rule in all_graph_rules():
        if not rule_enabled(rule.id, rules):
            continue
        for module, line, col, message in rule.check_project(
                graph, config):
            summary = graph.modules.get(module)
            if summary is None:
                continue
            path = graph.paths[module]
            lines = file_lines.get(path, [])
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            findings.append(Finding(
                rule=rule.id, severity=rule.severity, path=path,
                key=summary.key, line=line, col=col, message=message,
                source_line=text))
    # REP6xx ids are disjoint from per-file rule ids, so occurrence
    # counting over graph findings alone cannot collide with them.
    _assign_occurrences(findings)
    for finding in findings:
        _apply_noqa([finding], file_lines.get(finding.path, []))
    return findings


def analyze_paths(paths: Iterable[str],
                  config: Optional[AnalysisConfig] = None,
                  baseline: Optional[Dict[str, Dict[str, object]]] = None,
                  cache_dir: Optional[str] = None,
                  rules: Optional[Sequence[str]] = None,
                  ) -> AnalysisResult:
    """Analyze every python file under ``paths``.

    ``baseline`` is the fingerprint map from
    :func:`repro.analysis.baseline.load_baseline`; matched findings
    are marked suppressed, unmatched entries are reported stale.
    ``cache_dir`` enables the incremental cache: unchanged files
    replay their findings and summary instead of being re-parsed.
    ``rules`` restricts the run to rule ids matching any of the given
    prefixes (``["REP8"]`` runs only the determinism family).  A
    filtered run replays cached findings through the filter but never
    *stores* its (partial) per-file findings, so it cannot poison a
    later full run; stale-baseline reporting is likewise restricted
    to entries whose rule matches the filter.
    """
    config = config or DEFAULT_CONFIG
    baseline = baseline or {}
    result = AnalysisResult()
    cache = (AnalysisCache(cache_dir, config)
             if cache_dir is not None else None)
    summaries: List[Tuple[str, ModuleSummary]] = []
    file_lines: Dict[str, List[str]] = {}
    all_findings: List[Finding] = []
    scanned: List[str] = []
    for path, root in iter_python_files_with_roots(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        scanned.append(path)
        key = module_key(path, root)
        digest = content_digest(source)
        cached = cache.lookup(path, digest, key) if cache else None
        if cached is not None:
            findings, summary = cached
            # Cached findings are stored pre-baseline, but guard
            # against older stores: the current baseline is the only
            # authority on baseline suppression.
            for finding in findings:
                if finding.suppressed == SUPPRESSED_BASELINE:
                    finding.suppressed = None
            if rules:
                findings = [f for f in findings
                            if rule_enabled(f.rule, rules)]
            result.cache_hits += 1
        else:
            findings, summary = _analyze_module(
                source, path, key, config, rules=rules)
            if cache is not None:
                result.cache_misses += 1
                if not rules:
                    cache.store(path, digest, key, findings, summary)
        if summary is not None:
            summaries.append((path, summary))
        file_lines[path] = source.splitlines()
        all_findings.extend(findings)
        result.files_scanned += 1
    graph = ProjectGraph.build(summaries)
    all_findings.extend(
        _graph_findings(graph, config, file_lines, rules=rules))
    matched: set = set()
    for finding in all_findings:
        if (finding.suppressed is None
                and finding.fingerprint in baseline):
            finding.suppressed = "baseline"
            matched.add(finding.fingerprint)
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.findings = all_findings
    considered = {
        fp for fp, record in baseline.items()
        if rule_enabled(str(record.get("rule", "")), rules)
    } if rules else set(baseline)
    result.stale_baseline = sorted(considered - matched)
    if cache is not None:
        cache.prune(scanned)
        cache.save()
    return result
