"""Analysis driver: walk files, run rules, apply suppressions.

The engine is what ``repro lint`` executes: it collects ``.py`` files,
parses each once, runs every registered rule over the module context,
then filters the raw findings through the two suppression channels —

- **inline**: ``# repro: noqa[REP101]`` (or a blanket ``# repro:
  noqa``) on the flagged physical line;
- **baseline**: fingerprints recorded in the checked-in baseline file
  (see :mod:`repro.analysis.baseline`).

Suppressed findings stay in the result (marked with *how* they were
silenced) so reports can show them; only *active* findings affect the
exit code.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .config import DEFAULT_CONFIG, AnalysisConfig
from .findings import AnalysisResult, Finding, Severity
from .rules import ModuleContext, all_rules

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules",
              "build", "dist"}


def module_key(path: str) -> str:
    """Path from the last ``repro`` component down, posix-joined.

    ``src/repro/datalake/stream.py`` and
    ``/tmp/fixtures/repro/datalake/stream.py`` both key as
    ``repro/datalake/stream.py``, which is what rule scoping and
    baseline fingerprints are expressed in.  Files outside a ``repro``
    tree key as their bare filename.
    """
    parts = PurePosixPath(path.replace(os.sep, "/")).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        return "/".join(parts[idx:])
    return parts[-1] if parts else path


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, skipping caches."""
    seen: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                seen.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    seen.append(os.path.join(dirpath, name))
    yield from sorted(dict.fromkeys(seen))


def _noqa_rules(line: str) -> Optional[frozenset]:
    """Rules silenced on this line; empty frozenset means *all*."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def analyze_source(source: str, path: str,
                   config: Optional[AnalysisConfig] = None,
                   ) -> List[Finding]:
    """Run every rule over one module's source text."""
    config = config or DEFAULT_CONFIG
    key = module_key(path)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule="REP001", severity=Severity.ERROR, path=path, key=key,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            source_line=(lines[exc.lineno - 1]
                         if exc.lineno and exc.lineno <= len(lines)
                         else ""))]
    ctx = ModuleContext(path, key, tree, lines, config)
    findings: List[Finding] = []
    for rule in all_rules():
        for line, col, message in rule.check(ctx):
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            findings.append(Finding(
                rule=rule.id, severity=rule.severity, path=path,
                key=key, line=line, col=col, message=message,
                source_line=text))
    _assign_occurrences(findings)
    _apply_noqa(findings, lines)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _assign_occurrences(findings: List[Finding]) -> None:
    """Disambiguate identical (rule, key, line-text) fingerprints."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings,
                          key=lambda f: (f.line, f.col, f.rule)):
        ident = (finding.rule, finding.key,
                 finding.source_line.strip())
        finding.occurrence = counts.get(ident, 0)
        counts[ident] = finding.occurrence + 1


def _apply_noqa(findings: List[Finding], lines: List[str]) -> None:
    for finding in findings:
        if not (0 < finding.line <= len(lines)):
            continue
        silenced = _noqa_rules(lines[finding.line - 1])
        if silenced is None:
            continue
        if not silenced or finding.rule in silenced:
            finding.suppressed = "noqa"


def analyze_paths(paths: Iterable[str],
                  config: Optional[AnalysisConfig] = None,
                  baseline: Optional[Dict[str, Dict[str, object]]] = None,
                  ) -> AnalysisResult:
    """Analyze every python file under ``paths``.

    ``baseline`` is the fingerprint map from
    :func:`repro.analysis.baseline.load_baseline`; matched findings
    are marked suppressed, unmatched entries are reported stale.
    """
    config = config or DEFAULT_CONFIG
    baseline = baseline or {}
    result = AnalysisResult()
    matched: set = set()
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        findings = analyze_source(source, path, config)
        for finding in findings:
            if (finding.suppressed is None
                    and finding.fingerprint in baseline):
                finding.suppressed = "baseline"
                matched.add(finding.fingerprint)
        result.findings.extend(findings)
        result.files_scanned += 1
    result.stale_baseline = sorted(set(baseline) - matched)
    return result
