"""Function and call-site extraction for the REP604 dataflow rule.

The whole-program RNG-threading check needs, for every module, (a) the
signatures of its top-level functions, methods and class constructors,
and (b) every call site inside each function together with how its
arguments bind.  Both are extracted syntactically at parse time into
JSON-serialisable records; cross-module resolution happens later in
:mod:`repro.analysis.graph` once every module summary is available.

A function *holds* an RNG when it accepts an rng-like parameter, binds
a local from an RNG factory call (``numpy.random.default_rng`` /
``repro.nn.rng.resolve_rng``), or reads an rng-like attribute such as
``self._rng``.  Callee references are encoded as strings the graph can
resolve conservatively:

- ``local:name`` — a name defined or imported in this module;
- ``self:Class.method`` — a method call on ``self``;
- ``dotted:pkg.mod.func`` — an import-map-resolved attribute chain.

Anything else (calls on locals, call results, subscripts) is left
unresolved and never produces a finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .rules import ImportMap

#: Local / parameter / attribute names treated as Generator-valued.
RNG_NAME_RE = re.compile(r"^_?(rng|generator)$")

#: Dotted call targets whose result is a Generator.
RNG_FACTORY_SUFFIXES = ("numpy.random.default_rng", ".resolve_rng")


@dataclass
class ParamInfo:
    """One parameter of a project function."""

    name: str
    has_default: bool

    def to_dict(self) -> List[object]:
        return [self.name, self.has_default]

    @classmethod
    def from_dict(cls, d: List[object]) -> "ParamInfo":
        return cls(name=str(d[0]), has_default=bool(d[1]))


@dataclass
class CallSite:
    """One call inside a function body, with argument-binding shape."""

    line: int
    col: int
    callee: str                #: encoded reference (see module doc)
    npos: int                  #: positional argument count
    kwnames: Tuple[str, ...]   #: explicit keyword names
    has_star: bool = False     #: ``*args`` present
    has_kwstar: bool = False   #: ``**kwargs`` present

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col,
                "callee": self.callee, "npos": self.npos,
                "kwnames": list(self.kwnames),
                "has_star": self.has_star,
                "has_kwstar": self.has_kwstar}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CallSite":
        return cls(line=int(d["line"]), col=int(d["col"]),
                   callee=str(d["callee"]), npos=int(d["npos"]),
                   kwnames=tuple(d["kwnames"]),
                   has_star=bool(d["has_star"]),
                   has_kwstar=bool(d["has_kwstar"]))


@dataclass
class FunctionInfo:
    """Signature + RNG/dataflow facts for one function or method."""

    qualname: str              #: ``fit`` or ``ENLD.detect``
    line: int
    col: int
    #: parameters in order, ``self``/``cls`` already stripped.
    params: Tuple[ParamInfo, ...] = ()
    is_method: bool = False
    holds_rng: bool = False
    calls: Tuple[CallSite, ...] = ()

    def param_index(self, name: str) -> Optional[int]:
        for index, param in enumerate(self.params):
            if param.name == name:
                return index
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"qualname": self.qualname, "line": self.line,
                "col": self.col,
                "params": [p.to_dict() for p in self.params],
                "is_method": self.is_method,
                "holds_rng": self.holds_rng,
                "calls": [c.to_dict() for c in self.calls]}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FunctionInfo":
        return cls(qualname=str(d["qualname"]), line=int(d["line"]),
                   col=int(d["col"]),
                   params=tuple(ParamInfo.from_dict(p)
                                for p in d["params"]),
                   is_method=bool(d["is_method"]),
                   holds_rng=bool(d["holds_rng"]),
                   calls=tuple(CallSite.from_dict(c)
                               for c in d["calls"]))


@dataclass
class ClassInfo:
    """A top-level class: its name and constructor signature."""

    name: str
    #: ``__init__`` params with ``self`` stripped; None when the class
    #: defines no explicit constructor.
    init_params: Optional[Tuple[ParamInfo, ...]] = None

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name,
                "init_params": ([p.to_dict() for p in self.init_params]
                                if self.init_params is not None
                                else None)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ClassInfo":
        raw = d["init_params"]
        return cls(name=str(d["name"]),
                   init_params=(tuple(ParamInfo.from_dict(p)
                                      for p in raw)
                                if raw is not None else None))


def encode_callee(func: ast.expr, imports: ImportMap,
                  own_class: Optional[str]) -> Optional[str]:
    """Encode a callee expression as a graph-resolvable reference.

    Shared by the call-site scanner below and the concurrency
    extractor; see the module docstring for the encoding.  Anything
    unresolvable (calls on locals, call results, subscripts) encodes
    to None.
    """
    if isinstance(func, ast.Name):
        return f"local:{func.id}"
    if isinstance(func, ast.Attribute):
        if (isinstance(func.value, ast.Name)
                and func.value.id == "self" and own_class):
            return f"self:{own_class}.{func.attr}"
        dotted = imports.resolve(func)
        if dotted is not None and not dotted.startswith("."):
            return f"dotted:{dotted}"
    return None


def _params_of(node: ast.AST, is_method: bool) -> Tuple[ParamInfo, ...]:
    """Ordered parameters with default-presence, self/cls stripped."""
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    out: List[ParamInfo] = []
    no_default = len(ordered) - len(args.defaults)
    for index, arg in enumerate(ordered):
        out.append(ParamInfo(arg.arg, index >= no_default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        out.append(ParamInfo(arg.arg, default is not None))
    if is_method and out and out[0].name in ("self", "cls"):
        out = out[1:]
    return tuple(out)


class _FunctionScanner:
    """Per-function pass: RNG-holding facts and resolvable call sites."""

    def __init__(self, imports: ImportMap,
                 own_class: Optional[str]):
        self.imports = imports
        self.own_class = own_class

    def scan(self, node: ast.AST, qualname: str,
             is_method: bool) -> FunctionInfo:
        params = _params_of(node, is_method)
        holds = any(RNG_NAME_RE.match(p.name) for p in params)
        calls: List[CallSite] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and \
                    RNG_NAME_RE.match(sub.attr):
                holds = True
            elif isinstance(sub, ast.Assign):
                if self._is_rng_factory(sub.value) and any(
                        isinstance(t, ast.Name)
                        for t in sub.targets):
                    holds = True
            elif isinstance(sub, ast.Name) and \
                    RNG_NAME_RE.match(sub.id):
                holds = True
            elif isinstance(sub, ast.Call):
                site = self._call_site(sub)
                if site is not None:
                    calls.append(site)
        return FunctionInfo(qualname=qualname, line=node.lineno,
                            col=node.col_offset, params=params,
                            is_method=is_method, holds_rng=holds,
                            calls=tuple(calls))

    def _is_rng_factory(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = self.imports.resolve(value.func)
        if dotted is None:
            return False
        return any(dotted == s or dotted.endswith(s)
                   for s in RNG_FACTORY_SUFFIXES)

    def _call_site(self, node: ast.Call) -> Optional[CallSite]:
        callee = self._encode_callee(node.func)
        if callee is None:
            return None
        return CallSite(
            line=node.lineno, col=node.col_offset, callee=callee,
            npos=sum(1 for a in node.args
                     if not isinstance(a, ast.Starred)),
            kwnames=tuple(k.arg for k in node.keywords
                          if k.arg is not None),
            has_star=any(isinstance(a, ast.Starred)
                         for a in node.args),
            has_kwstar=any(k.arg is None for k in node.keywords))

    def _encode_callee(self, func: ast.expr) -> Optional[str]:
        return encode_callee(func, self.imports, self.own_class)


@dataclass
class ModuleFunctions:
    """All functions, methods and classes of one module."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"functions": {k: f.to_dict()
                              for k, f in self.functions.items()},
                "classes": {k: c.to_dict()
                            for k, c in self.classes.items()}}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleFunctions":
        return cls(functions={k: FunctionInfo.from_dict(f)
                              for k, f in d["functions"].items()},
                   classes={k: ClassInfo.from_dict(c)
                            for k, c in d["classes"].items()})


def extract_functions(tree: ast.Module,
                      imports_map: Optional[ImportMap] = None,
                      ) -> ModuleFunctions:
    """Extract every top-level function, method and class summary."""
    imports_map = imports_map or ImportMap(tree)
    out = ModuleFunctions()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _FunctionScanner(imports_map, None)
            out.functions[node.name] = scanner.scan(
                node, node.name, is_method=False)
        elif isinstance(node, ast.ClassDef):
            init_params: Optional[Tuple[ParamInfo, ...]] = None
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                scanner = _FunctionScanner(imports_map, node.name)
                qualname = f"{node.name}.{item.name}"
                out.functions[qualname] = scanner.scan(
                    item, qualname, is_method=True)
                if item.name == "__init__":
                    init_params = out.functions[qualname].params
            out.classes[node.name] = ClassInfo(node.name, init_params)
    return out
