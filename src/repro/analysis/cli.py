"""``repro lint``: the analysis engine as a CLI subcommand.

Exit codes: 0 clean (after suppressions), 1 violations, 2 bad usage
or an unreadable baseline.  ``make analyze`` and the CI ``analysis``
job run ``repro lint src``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .baseline import (DEFAULT_BASELINE_PATH, load_baseline,
                       write_baseline)
from .cache import DEFAULT_CACHE_DIR
from .engine import analyze_paths
from .report import render_json, render_sarif, render_text
from .rules import GRAPH_RULES, RULES


def add_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``lint`` subcommand on the repro CLI."""
    p = sub.add_parser(
        "lint",
        help="run the repo's static invariant checks (repro.analysis)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files/directories to scan (default: src)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text", help="output format")
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                   help="baseline file of grandfathered findings "
                        f"(default: {DEFAULT_BASELINE_PATH})")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline file entirely")
    p.add_argument("--write-baseline", action="store_true",
                   help="rewrite the baseline from current findings "
                        "and exit 0")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the run")
    p.add_argument("--show-suppressed", action="store_true",
                   help="include noqa/baselined findings in text "
                        "output")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--rules", default=None, metavar="PREFIX[,...]",
                   help="only run rules matching these comma-"
                        "separated id prefixes (e.g. REP8 for the "
                        "determinism family); REP001 always runs")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="incremental analysis cache directory "
                        f"(default: {DEFAULT_CACHE_DIR})")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the incremental cache for this run")
    p.set_defaults(fn=cmd_lint)


def _print_rules() -> None:
    for rule_id, cls in sorted({**RULES, **GRAPH_RULES}.items()):
        print(f"{rule_id}  {cls.severity.value:7s}  {cls.title}")
        print(f"        {cls.description}")


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the analysis and render the requested report."""
    if args.list_rules:
        _print_rules()
        return 0
    rules = None
    if args.rules is not None:
        rules = tuple(r.strip() for r in args.rules.split(",")
                      if r.strip())
        if not rules:
            print("error: --rules needs at least one prefix",
                  file=sys.stderr)
            return 2
        if args.write_baseline:
            # A family-scoped run sees only a slice of the findings;
            # writing it out would silently drop every other entry.
            print("error: --write-baseline cannot be combined with "
                  "--rules", file=sys.stderr)
            return 2
    try:
        baseline = ({} if args.no_baseline
                    else load_baseline(args.baseline))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    result = analyze_paths(args.paths, baseline=baseline,
                           cache_dir=cache_dir, rules=rules)
    if args.write_baseline:
        count = write_baseline(args.baseline, result.findings)
        print(f"wrote {count} finding(s) to {args.baseline}")
        return 0
    if args.format == "json":
        print(json.dumps(render_json(result), indent=2))
    elif args.format == "sarif":
        print(json.dumps(render_sarif(result), indent=2))
    else:
        print(render_text(result,
                          show_suppressed=args.show_suppressed))
    return result.exit_code(strict=args.strict)


def main(argv: List[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(prog="repro-lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_parser(sub)
    args = parser.parse_args(["lint", *(argv if argv is not None
                                        else sys.argv[1:])])
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
