"""Finding model for the repo's static-analysis pass.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* identifies the finding across reformatting-free edits:
it hashes the rule id, the module key (the path from the ``repro``
package root down, so checkouts at different prefixes agree) and the
stripped source line text, plus an occurrence index to disambiguate
identical lines.  Line *numbers* are deliberately excluded — inserting
a docstring above a grandfathered finding must not invalidate the
baseline entry that suppresses it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class Severity(str, Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported
    but only fail under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


#: How a reported-but-inactive finding was silenced.
SUPPRESSED_NOQA = "noqa"
SUPPRESSED_BASELINE = "baseline"


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str          #: path as given to the engine (for display)
    key: str           #: module key, e.g. ``repro/datalake/stream.py``
    line: int          #: 1-based line number
    col: int           #: 0-based column
    message: str
    source_line: str = ""
    suppressed: Optional[str] = None   #: None, "noqa" or "baseline"
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        payload = "|".join((self.rule, self.key,
                            self.source_line.strip(),
                            str(self.occurrence)))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        """``path:line:col: RULE severity message`` display form."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.severity.value} {self.message}")


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    stale_baseline: List[str] = field(default_factory=list)
    #: Incremental-cache counters (both stay 0 when caching is off):
    #: hits replayed stored findings/summaries, misses were re-parsed.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that were not suppressed by noqa or baseline."""
        return [f for f in self.findings if f.suppressed is None]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.active if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.active if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when errors (or warnings under strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0
