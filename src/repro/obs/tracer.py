"""Hierarchical tracing for the ENLD pipeline.

The paper's efficiency claims (Figs. 8 and 12) decompose where time
goes inside setup, contrastive sampling and the fine-grained voting
loop.  :class:`Tracer` records exactly that decomposition as a tree of
named spans, each accumulating two complementary costs:

- **wall-clock seconds** (``perf_counter``, substrate-dependent);
- **work** in *sample-epochs* — the machine-independent work model of
  :mod:`repro.eval.timer`, deterministic for a fixed configuration and
  therefore safe to gate on in CI.

Spans with the same name under the same parent are merged (``calls``
counts invocations), so a 5-iteration detection produces one stable
``detect/iteration/fine_tune`` node rather than five — which is what
keeps exported traces comparable across runs.

Instrumented library code never receives a tracer explicitly; it calls
the module-level helpers (:func:`trace_span`, :func:`add_work`,
:func:`incr`, :func:`observe`) which resolve the *ambient* tracer from
a :class:`contextvars.ContextVar`.  The default is :data:`NULL_TRACER`,
whose operations are no-ops costing one context-variable lookup — the
hot path stays effectively free when tracing is off.  Activate a real
tracer with :func:`use_tracer`::

    tracer = Tracer()
    with use_tracer(tracer):
        enld.detect(arrival)
    print(tracer.summary())

Accumulation is guarded by a lock and the span stack is thread-local,
so one tracer may observe concurrent pipelines; each thread's spans
nest under the shared root.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

Number = Union[int, float]


class SpanNode:
    """One node of the span tree: a named pipeline stage.

    Same-named invocations under the same parent accumulate into a
    single node; ``calls`` preserves the invocation count.
    """

    __slots__ = ("name", "calls", "wall_seconds", "work", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls: int = 0
        self.wall_seconds: float = 0.0
        self.work: int = 0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> dict:
        out: dict = {"calls": self.calls,
                     "wall_seconds": self.wall_seconds,
                     "work": self.work}
        if self.children:
            out["children"] = {name: c.to_dict()
                               for name, c in self.children.items()}
        return out

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "SpanNode"]]:
        """Yield ``(path, node)`` depth-first, paths joined with '/'."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for node in self.children.values():
            yield from node.walk(path)


class _Stat:
    """Streaming summary of an observed quantity (a gauge series)."""

    __slots__ = ("count", "total", "min", "max", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = value

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count if self.count else 0.0,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "last": self.last}


class _SpanContext:
    """Context manager pushing/popping one span on the owning tracer."""

    __slots__ = ("_tracer", "_name", "_node", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._node: Optional[SpanNode] = None
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._node = self._tracer._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._tracer._pop(self._node, elapsed)


class Tracer:
    """Thread-safe accumulator of spans, counters and gauges."""

    def __init__(self) -> None:
        self.root = SpanNode("")
        self.counters: Dict[str, Number] = {}  # repro: guarded-by(_lock)
        self.metrics: Dict[str, _Stat] = {}  # repro: guarded-by(_lock)
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span bookkeeping ---------------------------------------------------
    def _stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> SpanNode:
        stack = self._stack()
        with self._lock:
            node = stack[-1].child(name)
            node.calls += 1
        stack.append(node)
        return node

    def _pop(self, node: SpanNode, elapsed: float) -> None:
        stack = self._stack()
        # Tolerate exceptions unwinding through nested spans.
        while stack and stack[-1] is not node:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            node.wall_seconds += elapsed

    # -- public API ---------------------------------------------------------
    def span(self, name: str) -> _SpanContext:
        """Context manager opening a child span of the current span."""
        return _SpanContext(self, name)

    def add_work(self, samples: int) -> None:
        """Attribute ``samples`` sample-epochs to the innermost span."""
        node = self._stack()[-1]
        with self._lock:
            node.work += int(samples)

    def incr(self, name: str, n: Number = 1) -> None:
        """Increment a named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: Number) -> None:
        """Record one observation of a named gauge."""
        with self._lock:
            stat = self.metrics.get(name)
            if stat is None:
                stat = self.metrics[name] = _Stat()
            stat.add(float(value))

    @property
    def enabled(self) -> bool:
        return True

    # -- export -------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot: span tree + counters + gauge stats."""
        with self._lock:
            return {
                "spans": {name: node.to_dict()
                          for name, node in self.root.children.items()},
                "counters": dict(self.counters),
                "metrics": {name: stat.to_dict()
                            for name, stat in self.metrics.items()},
            }

    def stage_work(self) -> Dict[str, dict]:
        """Flat ``path -> {calls, work, wall_seconds}`` over all spans."""
        out: Dict[str, dict] = {}
        with self._lock:
            for top in self.root.children.values():
                for path, node in top.walk():
                    out[path] = {"calls": node.calls, "work": node.work,
                                 "wall_seconds": node.wall_seconds}
        return out

    def summary(self) -> str:
        """Human-readable indented table of the span tree."""
        from .export import format_summary
        return format_summary(self.to_dict())


class NullTracer:
    """No-op tracer: the ambient default when tracing is off.

    Every operation is a constant-time no-op so instrumented hot paths
    pay only the ambient-tracer lookup.
    """

    __slots__ = ()

    def span(self, name: str) -> "_NullSpan":
        return _NULL_SPAN

    def add_work(self, samples: int) -> None:
        pass

    def incr(self, name: str, n: Number = 1) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    @property
    def enabled(self) -> bool:
        return False

    def to_dict(self) -> dict:
        return {"spans": {}, "counters": {}, "metrics": {}}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

_current: ContextVar[Union[Tracer, NullTracer]] = ContextVar(
    "repro_tracer", default=NULL_TRACER)


def current_tracer() -> Union[Tracer, NullTracer]:
    """The ambient tracer (:data:`NULL_TRACER` when tracing is off)."""
    return _current.get()


@contextmanager
def use_tracer(
    tracer: Optional[Union[Tracer, NullTracer]],
) -> Iterator[Union[Tracer, NullTracer]]:
    """Make ``tracer`` ambient within the ``with`` block.

    ``None`` leaves the current ambient tracer in place, so wrappers can
    unconditionally write ``with use_tracer(self.tracer):`` and still
    compose with an outer activation.
    """
    if tracer is None:
        yield _current.get()
        return
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)


SpanHook = Callable[[str], None]

_span_hook: ContextVar[Optional[SpanHook]] = ContextVar(
    "repro_span_hook", default=None)


def current_span_hook() -> Optional[SpanHook]:
    """The ambient span hook, or ``None`` when none is installed."""
    return _span_hook.get()


@contextmanager
def use_span_hook(hook: Optional[SpanHook]) -> Iterator[Optional[SpanHook]]:
    """Call ``hook(name)`` at every span boundary within the block.

    The hook fires when a span *opens*, before any timing starts, and
    may raise — which is exactly what the fault-injection harness of
    :mod:`repro.datalake.resilience` does to simulate a stage failure
    at a deterministic pipeline location.  ``None`` leaves the current
    hook in place so wrappers compose like :func:`use_tracer`.
    """
    if hook is None:
        yield _span_hook.get()
        return
    token = _span_hook.set(hook)
    try:
        yield hook
    finally:
        _span_hook.reset(token)


def trace_span(name: str) -> Union[_SpanContext, _NullSpan]:
    """Open a span named ``name`` on the ambient tracer.

    When a span hook is installed (:func:`use_span_hook`) it is invoked
    with the span name first; the common case pays one extra
    context-variable lookup.
    """
    hook = _span_hook.get()
    if hook is not None:
        hook(name)
    return _current.get().span(name)


def add_work(samples: int) -> None:
    """Attribute sample-epochs to the ambient tracer's current span."""
    _current.get().add_work(samples)


def incr(name: str, n: Number = 1) -> None:
    """Increment a counter on the ambient tracer."""
    _current.get().incr(name, n)


def observe(name: str, value: Number) -> None:
    """Record a gauge observation on the ambient tracer."""
    _current.get().observe(name, value)
