"""Trace serialisation, aggregation and baseline comparison.

Companion to :mod:`repro.obs.tracer`: everything that operates on the
*exported* ``to_dict()`` form of a trace —

- :func:`save_trace` / :func:`load_trace` — JSON on disk;
- :func:`merge_trace_dicts` — pointwise aggregation of several traces
  (the platform sums per-submission traces into a fleet view);
- :func:`flatten_spans` — ``path -> totals`` for tabular consumers;
- :func:`format_summary` — the human-readable table;
- :func:`compare_stage_work` — the CI perf-smoke gate: per-stage
  sample-epoch counts versus a checked-in baseline within a relative
  tolerance.  Work counts are deterministic for a fixed seed and
  config, so the gate is flake-free where wall-clock gating is not.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, TextIO


def save_trace(trace: dict, path: str) -> None:
    """Write an exported trace dict as indented JSON."""
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> dict:
    """Read a trace JSON written by :func:`save_trace`."""
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def _merge_span(into: dict, other: dict) -> None:
    into["calls"] = into.get("calls", 0) + other.get("calls", 0)
    into["wall_seconds"] = (into.get("wall_seconds", 0.0)
                            + other.get("wall_seconds", 0.0))
    into["work"] = into.get("work", 0) + other.get("work", 0)
    for name, child in other.get("children", {}).items():
        target = into.setdefault("children", {}).setdefault(name, {})
        _merge_span(target, child)


def merge_trace_dicts(traces: List[dict]) -> dict:
    """Sum several exported traces into one aggregate trace.

    Spans merge by path; counters add; gauge stats combine count/total/
    min/max (``mean`` is recomputed, ``last`` keeps the latest trace's).
    """
    spans: dict = {}
    counters: Dict[str, float] = {}
    metrics: Dict[str, dict] = {}
    for trace in traces:
        for name, span in trace.get("spans", {}).items():
            _merge_span(spans.setdefault(name, {}), span)
        for name, value in trace.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, stat in trace.get("metrics", {}).items():
            agg = metrics.get(name)
            if agg is None:
                metrics[name] = dict(stat)
                continue
            count = agg["count"] + stat["count"]
            total = agg["total"] + stat["total"]
            agg.update(
                count=count, total=total,
                mean=total / count if count else 0.0,
                min=min(agg["min"], stat["min"]),
                max=max(agg["max"], stat["max"]),
                last=stat["last"])
    return {"spans": spans, "counters": counters, "metrics": metrics}


# ----------------------------------------------------------------------
# Flattening & display
# ----------------------------------------------------------------------

def _walk(name: str, span: dict, prefix: str, depth: int
          ) -> Iterator[tuple]:
    path = f"{prefix}/{name}" if prefix else name
    yield path, depth, span
    for child_name, child in span.get("children", {}).items():
        yield from _walk(child_name, child, path, depth + 1)


def flatten_spans(trace: dict) -> Dict[str, dict]:
    """``path -> {calls, work, wall_seconds}`` over every span."""
    out: Dict[str, dict] = {}
    for name, span in trace.get("spans", {}).items():
        for path, _, node in _walk(name, span, "", 0):
            out[path] = {"calls": node.get("calls", 0),
                         "work": node.get("work", 0),
                         "wall_seconds": node.get("wall_seconds", 0.0)}
    return out


def format_summary(trace: dict) -> str:
    """Indented per-stage table plus counters and gauges."""
    rows = []
    for name, span in trace.get("spans", {}).items():
        for path, depth, node in _walk(name, span, "", 0):
            label = "  " * depth + path.rsplit("/", 1)[-1]
            rows.append((label, node.get("calls", 0),
                         node.get("wall_seconds", 0.0),
                         node.get("work", 0)))
    width = max((len(r[0]) for r in rows), default=10)
    width = max(width, len("stage"))
    lines = [f"{'stage'.ljust(width)}  {'calls':>6}  {'wall_s':>9}  "
             f"{'work':>10}"]
    lines.append("-" * len(lines[0]))
    for label, calls, wall, work in rows:
        lines.append(f"{label.ljust(width)}  {calls:>6}  {wall:>9.3f}  "
                     f"{work:>10}")
    counters = trace.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
    metrics = trace.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append("gauges (mean over observations):")
        for name in sorted(metrics):
            stat = metrics[name]
            lines.append(f"  {name}: mean={stat['mean']:.3f} "
                         f"min={stat['min']:.3f} max={stat['max']:.3f} "
                         f"n={stat['count']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline gating
# ----------------------------------------------------------------------

def compare_stage_work(trace: dict, baseline: dict,
                       tolerance: float = 0.15,
                       min_work: int = 1) -> List[str]:
    """Check per-stage work counts against a baseline trace.

    Returns a list of human-readable violations (empty when the gate
    passes).  Only stages whose baseline work is at least ``min_work``
    participate — tiny stages would make relative tolerance meaningless.
    A stage present in the baseline but missing from the trace is a
    violation (a silently dropped pipeline step is a regression too).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    got = flatten_spans(trace)
    want = flatten_spans(baseline)
    violations: List[str] = []
    for path, base in sorted(want.items()):
        base_work = base.get("work", 0)
        if base_work < min_work:
            continue
        node = got.get(path)
        if node is None:
            violations.append(f"{path}: missing from trace "
                              f"(baseline work={base_work})")
            continue
        work = node.get("work", 0)
        rel = abs(work - base_work) / base_work
        if rel > tolerance:
            violations.append(
                f"{path}: work={work} vs baseline={base_work} "
                f"({rel:+.1%} > ±{tolerance:.0%})")
    return violations


def check_against_baseline(trace: dict, baseline_path: str,
                           tolerance: float = 0.15,
                           out: Optional[TextIO] = None) -> bool:
    """Load a baseline file, compare, and print the verdict.

    Returns ``True`` when the gate passes.  ``out`` is a file-like for
    messages (defaults to stdout).
    """
    import sys
    out = out or sys.stdout
    baseline = load_trace(baseline_path)
    violations = compare_stage_work(trace, baseline, tolerance=tolerance)
    if violations:
        print(f"perf-smoke gate FAILED against {baseline_path}:", file=out)
        for v in violations:
            print(f"  {v}", file=out)
        return False
    n = sum(1 for s in flatten_spans(baseline).values()
            if s.get("work", 0) >= 1)
    print(f"perf-smoke gate passed: {n} stages within "
          f"±{tolerance:.0%} of {baseline_path}", file=out)
    return True


def refresh_baseline(trace: dict, baseline_path: str,
                     meta: Optional[dict] = None) -> None:
    """Write ``trace`` as the new checked-in baseline."""
    payload = dict(trace)
    if meta:
        payload["meta"] = meta
    save_trace(payload, baseline_path)
