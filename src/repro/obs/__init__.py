"""Pipeline observability: tracing, counters and trace export.

The :class:`Tracer` records nested per-stage spans with both wall-clock
seconds and the machine-independent sample-epoch work model; library
code reports into the *ambient* tracer (default: a zero-cost no-op).
See :mod:`repro.obs.tracer` for the model and :mod:`repro.obs.export`
for JSON serialisation, aggregation and the CI baseline gate.
"""

from .clock import Stopwatch
from .export import (check_against_baseline, compare_stage_work,
                     flatten_spans, format_summary, load_trace,
                     merge_trace_dicts, refresh_baseline, save_trace)
from .tracer import (NULL_TRACER, NullTracer, SpanNode, Tracer, add_work,
                     current_span_hook, current_tracer, incr, observe,
                     trace_span, use_span_hook, use_tracer)

__all__ = [
    "Stopwatch",
    "Tracer", "NullTracer", "NULL_TRACER", "SpanNode",
    "current_tracer", "use_tracer", "trace_span", "add_work", "incr",
    "observe", "use_span_hook", "current_span_hook",
    "save_trace", "load_trace", "merge_trace_dicts", "flatten_spans",
    "format_summary", "compare_stage_work", "check_against_baseline",
    "refresh_baseline",
]
