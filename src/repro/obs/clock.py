"""Wall-clock reads, owned by observability.

Every raw clock read in the library lives here or in
:mod:`repro.obs.tracer`; the ``REP401`` analysis rule keeps it that
way.  Centralising the reads keeps timing mockable in tests and makes
the deterministic sample-epoch *work model* — not ad-hoc wall-clock
deltas — the quantity CI gates on.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    ``seconds`` tracks the running total while the block is open and
    freezes at exit, so it can be read both mid-flight and after::

        with Stopwatch() as sw:
            do_work()
        report.setup_seconds = sw.seconds
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds = time.perf_counter() - self._start
