"""Wall-clock reads, owned by observability.

Every raw clock read in the library lives here or in
:mod:`repro.obs.tracer`; the ``REP401`` analysis rule keeps it that
way.  Centralising the reads keeps timing mockable in tests and makes
the deterministic sample-epoch *work model* — not ad-hoc wall-clock
deltas — the quantity CI gates on.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    ``seconds`` freezes the total at block exit; :attr:`elapsed` reads
    the live value at any point after :meth:`start` (or ``__enter__``),
    which is what deadline checks such as the model-update watchdog
    use::

        with Stopwatch() as sw:
            do_work()
        report.setup_seconds = sw.seconds

        watch = Stopwatch().start()
        while watch.elapsed < timeout:
            poll()
    """

    __slots__ = ("seconds", "_start", "_running")

    def __init__(self) -> None:
        self.seconds: float = 0.0
        self._start: float = 0.0
        self._running: bool = False

    def start(self) -> "Stopwatch":
        """Start (or restart) timing without a ``with`` block."""
        self._start = time.perf_counter()
        self._running = True
        return self

    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start`; frozen total once stopped."""
        if self._running:
            return time.perf_counter() - self._start
        return self.seconds

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.seconds = time.perf_counter() - self._start
        self._running = False
