"""Shared experiment harness: materialise a world, build detectors.

Every figure driver starts from the same three steps — generate a
synthetic dataset, split it into inventory and an incremental stream,
and corrupt labels at a noise rate — so this module centralises them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..baselines import (ConfidentLearningDetector, DefaultDetector,
                         TopofilterDetector)
from ..core.enld import ENLD
from ..datasets import (generate, get_preset, paper_shard_plan,
                        split_inventory_incremental)
from ..datalake import ArrivalStream
from ..nn.data import LabeledDataset
from ..noise import corrupt_labels, pair_asymmetric
from .presets import ExperimentPreset


@dataclass
class Environment:
    """A materialised experimental world at one noise rate."""

    preset: ExperimentPreset
    noise_rate: float
    num_classes: int
    inventory: LabeledDataset          # noisy inventory I
    pool: LabeledDataset               # clean incremental pool
    arrivals: List[LabeledDataset]     # noisy incremental datasets
    transition: np.ndarray


def build_environment(preset: ExperimentPreset, noise_rate: float,
                      missing_fraction: float = 0.0) -> Environment:
    """Generate data, split it and corrupt labels per the paper's §V-A."""
    spec = get_preset(preset.dataset_preset, scale=preset.scale) \
        if preset.dataset_preset != "toy" else get_preset("toy")
    data = generate(spec, seed=preset.seed)
    rng = np.random.default_rng(preset.seed + 1)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(spec.num_classes, noise_rate)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    stream = ArrivalStream(pool, paper_shard_plan(preset.dataset_preset),
                           transition=transition,
                           missing_fraction=missing_fraction,
                           num_classes=spec.num_classes,
                           seed=preset.seed + 2)
    arrivals = stream.arrivals()
    if preset.shard_limit is not None:
        arrivals = arrivals[:preset.shard_limit]
    return Environment(preset=preset, noise_rate=noise_rate,
                       num_classes=spec.num_classes, inventory=inventory,
                       pool=pool, arrivals=arrivals, transition=transition)


def build_enld(env: Environment, **config_overrides) -> ENLD:
    """An initialised ENLD instance for the environment."""
    config = env.preset.enld_config(**config_overrides)
    return ENLD(config).initialize(env.inventory,
                                   num_classes=env.num_classes)


def build_baselines(env: Environment, enld: ENLD,
                    include_topofilter: bool = True) -> Dict[str, object]:
    """The paper's §V-A4 baselines sharing ENLD's general model."""
    detectors: Dict[str, object] = {
        "default": DefaultDetector(enld.model),
        "cl_prune_by_class": ConfidentLearningDetector(
            enld.model, enld.inventory_candidates,
            method="prune_by_class"),
        "cl_prune_by_noise_rate": ConfidentLearningDetector(
            enld.model, enld.inventory_candidates,
            method="prune_by_noise_rate"),
    }
    if include_topofilter:
        detectors["topofilter"] = TopofilterDetector(
            env.inventory, env.num_classes,
            model_name=env.preset.model_name,
            train_epochs=env.preset.topofilter_epochs,
            knn_k=env.preset.topofilter_knn_k,
            mixup_alpha=env.preset.topofilter_mixup,
            seed=env.preset.seed)
    return detectors
