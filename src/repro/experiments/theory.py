"""The Fig. 3 contribution analysis (paper §IV-D, Corollary 3).

Measures the evaluation loss on ``D_test`` — the noisy samples of an
incremental dataset paired with their *true* labels — after one epoch
of fine-tuning with samples added by different strategies:

- **origin**: no training, the general model's loss;
- **random**: ``|D_test|`` random inventory samples with true labels;
- **nearest_only**: for each test sample, its nearest inventory
  neighbour in feature space with *that neighbour's* true label;
- **nearest_related**: the nearest inventory neighbour *among those
  sharing the test sample's true label*.

Corollary 3 predicts nearest_related ≤ nearest_only ≤ random in final
loss (closer representations + matching labels ⇒ larger training
contribution), which the paper's Fig. 3 confirms empirically.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..index.classindex import ClassFeatureIndex
from ..index.facade import build_backend
from ..nn.data import LabeledDataset
from ..nn.serialize import clone_module
from ..nn.train import evaluate_loss, fit
from .harness import Environment, build_enld

STRATEGIES = ("origin", "random", "nearest_only", "nearest_related")


def _test_set(dataset: LabeledDataset) -> LabeledDataset:
    """``D_test``: the noisy rows of ``D`` relabelled with ground truth."""
    noisy = dataset.noise_mask()
    subset = dataset.mask(noisy, name="D_test")
    return subset.with_labels(subset.true_y, name="D_test")


def _pick_additions(strategy: str, test: LabeledDataset,
                    candidates: LabeledDataset, cand_features: np.ndarray,
                    test_features: np.ndarray,
                    rng: np.random.Generator) -> LabeledDataset:
    """The added training set for one strategy (true labels throughout)."""
    n = len(test)
    if strategy == "random":
        idx = rng.choice(len(candidates), size=min(n, len(candidates)),
                         replace=False)
        chosen = candidates.subset(idx)
    elif strategy == "nearest_only":
        tree = build_backend(cand_features)
        _, nearest = tree.query_batch(test_features, k=1)
        chosen = candidates.subset(nearest[:, 0])
    elif strategy == "nearest_related":
        index = ClassFeatureIndex(cand_features, candidates.true_y,
                                  backend="auto")
        picks: List[int] = []
        for f, true_label in zip(test_features, test.y):
            _, pos = index.query(f, int(true_label), k=1)
            if pos.size:
                picks.append(int(pos[0]))
        chosen = candidates.subset(np.array(picks, dtype=int))
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return chosen.with_labels(chosen.true_y, name=f"add[{strategy}]")


def contribution_experiment(env: Environment,
                            num_shards: int = 4,
                            train_epochs: int = 2) -> Dict[str, float]:
    """Run the Fig. 3 strategies; returns mean loss per strategy."""
    enld = build_enld(env)
    rng = np.random.default_rng(env.preset.seed + 10)
    candidates = enld.inventory_candidates
    cand_features = enld.model.features(candidates.flat_x())

    losses: Dict[str, List[float]] = {s: [] for s in STRATEGIES}
    for dataset in env.arrivals[:num_shards]:
        test = _test_set(dataset)
        if len(test) == 0:
            continue
        test_features = enld.model.features(test.flat_x())
        losses["origin"].append(evaluate_loss(enld.model, test))
        for strategy in ("random", "nearest_only", "nearest_related"):
            additions = _pick_additions(strategy, test, candidates,
                                        cand_features, test_features, rng)
            model = clone_module(enld.model)
            fit(model, additions, epochs=train_epochs, rng=rng,
                lr=enld.config.finetune_lr,
                batch_size=enld.config.finetune_batch_size)
            losses[strategy].append(evaluate_loss(model, test))
    return {s: float(np.mean(v)) if v else float("nan")
            for s, v in losses.items()}
