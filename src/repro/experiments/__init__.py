"""``repro.experiments`` — drivers reproducing every table and figure."""

from .figures import (ABLATIONS, METHOD_ORDER, fig3_contribution, fig4_emnist,
                      fig5_cifar100, fig6_networks, fig7_tiny_imagenet,
                      fig8_time_cost, fig9_training_process, fig10_policies,
                      fig11_12_k_sweep, fig13a_missing_labels,
                      fig13b_ambiguous_counts, fig14_ablation,
                      method_comparison, table2_model_update)
from .harness import (Environment, build_baselines, build_enld,
                      build_environment)
from .hotpath import (HOTPATH_SPEEDUP_FLOOR, format_hotpath_report,
                      gate_hotpath, run_hotpath_bench)
from .presets import (PAPER_NOISE_RATES, ExperimentPreset, bench_preset,
                      full_preset, small_preset)
from .theory import STRATEGIES, contribution_experiment

__all__ = [
    "ExperimentPreset", "bench_preset", "small_preset", "full_preset",
    "PAPER_NOISE_RATES",
    "Environment", "build_environment", "build_enld", "build_baselines",
    "contribution_experiment", "STRATEGIES",
    "run_hotpath_bench", "gate_hotpath", "format_hotpath_report",
    "HOTPATH_SPEEDUP_FLOOR",
    "method_comparison", "fig3_contribution", "fig4_emnist", "fig5_cifar100",
    "fig6_networks", "fig7_tiny_imagenet", "fig8_time_cost",
    "fig9_training_process", "fig10_policies", "fig11_12_k_sweep",
    "table2_model_update", "fig13a_missing_labels", "fig13b_ambiguous_counts",
    "fig14_ablation", "METHOD_ORDER", "ABLATIONS",
]
