"""Render EXPERIMENTS.md from benchmark result JSON files.

``pytest benchmarks/ --benchmark-only`` writes one JSON per figure into
``benchmarks/results/``; this module turns those into the
paper-vs-measured record the repository ships as EXPERIMENTS.md::

    python -m repro report --results benchmarks/results -o EXPERIMENTS.md

Paper-side numbers are the values reported in the ICDE 2023 text
(means over noise rates unless stated otherwise).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

#: The paper's headline numbers, quoted in §I and §V.
PAPER_VALUES: Dict[str, Dict] = {
    "fig4": {"enld_f1": 0.9191, "topofilter_f1": 0.9021,
             "speedup": 4.09, "dataset": "EMNIST"},
    "fig5": {"enld_f1": 0.8194, "topofilter_f1": 0.8139,
             "speedup": 3.65, "dataset": "CIFAR100"},
    "fig7": {"enld_f1": 0.7297, "topofilter_f1": 0.6171,
             "speedup": 4.97, "dataset": "Tiny-ImageNet"},
    "fig6": {"speedups": {"densenet121": 2.46, "resnet164": 2.64}},
    "fig14": {"origin_f1": 0.8139, "enld1_f1": 0.6721},
    "table2": {"origin": [0.5893, 0.5285, 0.4508, 0.3717],
               "update": [0.6131, 0.5706, 0.4940, 0.3723]},
}


def _load(results_dir: str, name: str) -> Optional[dict]:
    path = os.path.join(results_dir, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def _pct(x: float) -> str:
    return f"{x:.4f}"


def _method_section(name: str, fig_key: str, title: str,
                    results_dir: str) -> str:
    data = _load(results_dir, name)
    paper = PAPER_VALUES[fig_key]
    lines = [f"## {title}", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append(f"Paper ({paper['dataset']}): ENLD mean F1 "
                 f"**{paper['enld_f1']}** vs Topofilter "
                 f"**{paper['topofilter_f1']}**; ENLD is "
                 f"**{paper['speedup']}x** faster per request.")
    lines.append("")
    lines.append("Measured (bench scale):")
    lines.append("")
    lines.append("| method | mean F1 |")
    lines.append("|---|---|")
    for method, f1 in sorted(data["mean_f1"].items(),
                             key=lambda kv: -kv[1]):
        lines.append(f"| {method} | {_pct(f1)} |")
    eta_keys = list(data["per_noise_rate"])
    speedups = [data["per_noise_rate"][k]["enld"].get(
        "speedup_over_topofilter") for k in eta_keys]
    works = [data["per_noise_rate"][k]["enld"].get(
        "work_speedup_over_topofilter") for k in eta_keys]
    speedups = [s for s in speedups if s is not None]
    works = [w for w in works if w is not None]
    if speedups:
        mean_s = sum(speedups) / len(speedups)
        mean_w = sum(works) / len(works)
        lines.append("")
        lines.append(f"ENLD vs Topofilter per-request speedup: "
                     f"**{mean_s:.2f}x** wall-clock, **{mean_w:.2f}x** "
                     "in the work model (training sample-epochs).")
    lines.append("")
    lines.append("Shape check: ENLD leads on mean F1 and undercuts the "
                 "training-based baseline's per-request cost, as in the "
                 "paper. Absolute F1 levels differ (synthetic data, "
                 "smaller inventory).")
    return "\n".join(lines)


def _fig3_section(results_dir: str) -> str:
    data = _load(results_dir, "fig03_contribution")
    lines = ["## Fig. 3 — contribution of sample-addition strategies", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append("Paper: after fine-tuning with true-labelled additions, "
                 "Nearest-Related < Nearest-Only < Origin in loss, with "
                 "Random giving little improvement.")
    lines.append("")
    lines.append("| noise | origin | random | nearest_only | nearest_related |")
    lines.append("|---|---|---|---|---|")
    for eta, block in data.items():
        lines.append(f"| {eta} | " + " | ".join(
            _pct(block[s]) for s in ("origin", "random", "nearest_only",
                                     "nearest_related")) + " |")
    lines.append("")
    lines.append("Shape check: nearest-related attains the lowest mean "
                 "loss — Corollary 3's prediction.")
    return "\n".join(lines)


def _fig6_section(results_dir: str) -> str:
    data = _load(results_dir, "fig06_networks")
    lines = ["## Fig. 6 — architecture generalisation", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    paper = PAPER_VALUES["fig6"]["speedups"]
    lines.append("Paper: ENLD beats Topofilter with DenseNet-121 and "
                 f"ResNet-164 while saving {paper['densenet121']}x / "
                 f"{paper['resnet164']}x process time.")
    lines.append("")
    lines.append("| model | ENLD F1 | Topofilter F1 | speedup |")
    lines.append("|---|---|---|---|")
    for model, stats in data.items():
        lines.append(f"| {model} | {_pct(stats['enld']['f1'])} | "
                     f"{_pct(stats['topofilter']['f1'])} | "
                     f"{stats['speedup']:.2f}x |")
    return "\n".join(lines)


def _fig8_section(results_dir: str) -> str:
    data = _load(results_dir, "fig08_timecost")
    lines = ["## Fig. 8 — setup and process time", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append("Paper: Default/CL share the setup cost with near-zero "
                 "process time; Topofilter pays no setup but the largest "
                 "per-request cost; ENLD is 3.65–4.97x faster than "
                 "Topofilter per request.")
    lines.append("")
    lines.append("| dataset | method | setup_s | process_s | "
                 "train sample-epochs |")
    lines.append("|---|---|---|---|---|")
    for dataset, methods in data.items():
        for method, stats in methods.items():
            lines.append(
                f"| {dataset} | {method} | "
                f"{stats['setup_seconds']:.1f} | "
                f"{stats['mean_process_seconds']:.3f} | "
                f"{stats['mean_process_train_samples']:.0f} |")
    lines.append("")
    lines.append("Note: wall-clock ratios compress at bench scale (the "
                 "inventory is ~100x smaller than the paper's); the work "
                 "model preserves the ordering at any scale.")
    return "\n".join(lines)


def _fig9_section(results_dir: str) -> str:
    data = _load(results_dir, "fig09_process")
    lines = ["## Fig. 9 — detection trajectory over iterations", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append("Paper: recall starts high and drifts down slowly while "
                 "precision/F1 rise; high noise flattens earlier.")
    lines.append("")
    for eta, series in data.items():
        f1 = " → ".join(_pct(v) for v in series["f1"])
        lines.append(f"- {eta}: F1 {f1}")
    return "\n".join(lines)


def _fig10_section(results_dir: str) -> str:
    data = _load(results_dir, "fig10_policies")
    lines = ["## Fig. 10 — sampling-policy comparison", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append("Paper: contrastive sampling leads; HC/Pseudo beat "
                 "Entropy/LC/Random.")
    lines.append("")
    lines.append("| policy | mean F1 |")
    lines.append("|---|---|")
    for policy, f1 in sorted(data["mean_f1"].items(),
                             key=lambda kv: -kv[1]):
        lines.append(f"| {policy} | {_pct(f1)} |")
    return "\n".join(lines)


def _fig11_12_section(results_dir: str) -> str:
    data11 = _load(results_dir, "fig11_k_sweep")
    data12 = _load(results_dir, "fig12_k_time")
    lines = ["## Figs. 11 & 12 — hyperparameter k", ""]
    if data11 is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append("Paper: F1 grows with k (diminishing returns ≥3); "
                 "process time grows with k but k=3 can undercut k=2 via "
                 "faster convergence.")
    lines.append("")
    src = (data12 or data11)["mean"] if (data12 or data11) else {}
    lines.append("| k | mean F1 | mean process_s |")
    lines.append("|---|---|---|")
    for key in sorted(src, key=lambda s: int(s.split("=")[1])):
        stats = src[key]
        lines.append(f"| {key} | {_pct(stats['f1'])} | "
                     f"{stats['mean_process_seconds']:.3f} |")
    return "\n".join(lines)


def _table2_section(results_dir: str) -> str:
    data = _load(results_dir, "table2_model_update")
    paper = PAPER_VALUES["table2"]
    lines = ["## Table II — model update", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append("| noise | paper origin→update | measured origin→update |")
    lines.append("|---|---|---|")
    for i, (eta, block) in enumerate(sorted(data.items())):
        p_o = paper["origin"][i] if i < len(paper["origin"]) else None
        p_u = paper["update"][i] if i < len(paper["update"]) else None
        paper_cell = (f"{p_o:.4f} → {p_u:.4f}" if p_o is not None else "—")
        lines.append(
            f"| {eta} | {paper_cell} | "
            f"{block['origin_accuracy']:.4f} → "
            f"{block['update_accuracy']:.4f} |")
    lines.append("")
    lines.append("Shape check: updating on the stringently-voted clean "
                 "inventory improves generalisation; gains shrink as "
                 "noise grows.")
    return "\n".join(lines)


def _fig13_section(results_dir: str) -> str:
    data_a = _load(results_dir, "fig13a_missing")
    data_b = _load(results_dir, "fig13b_ambiguous")
    lines = ["## Fig. 13 — missing labels and ambiguous-set size", ""]
    if data_a is not None:
        lines.append("Fig. 13a (paper: pseudo-label and detection F1 "
                     "degrade as the missing rate rises):")
        lines.append("")
        lines.append("| missing | pseudo F1 | detection F1 |")
        lines.append("|---|---|---|")
        for key, block in data_a.items():
            lines.append(f"| {key} | {_pct(block['pseudo_f1'])} | "
                         f"{_pct(block['detection_f1'])} |")
        lines.append("")
    if data_b is not None:
        series = " → ".join(f"{v:.1f}" for v in data_b["num_ambiguous"])
        lines.append(f"Fig. 13b (paper: |A| shrinks per iteration): "
                     f"measured |A| = {series}.")
    if data_a is None and data_b is None:
        lines.append("_No recorded benchmark result._")
    return "\n".join(lines)


def _fig14_section(results_dir: str) -> str:
    data = _load(results_dir, "fig14_ablation")
    paper = PAPER_VALUES["fig14"]
    lines = ["## Fig. 14 — ablation study", ""]
    if data is None:
        lines.append("_No recorded benchmark result._")
        return "\n".join(lines)
    lines.append(f"Paper: removing contrastive sampling drops mean F1 "
                 f"from {paper['origin_f1']} to {paper['enld1_f1']}; "
                 "ENLD-2 helps only at low noise; ENLD-3 destabilises "
                 "training; ENLD-4 wins only at η=0.1.")
    lines.append("")
    lines.append("| variant | mean F1 |")
    lines.append("|---|---|")
    for variant, f1 in sorted(data["mean_f1"].items(),
                              key=lambda kv: -kv[1]):
        lines.append(f"| {variant} | {_pct(f1)} |")
    return "\n".join(lines)


def _extensions_section(results_dir: str) -> str:
    lines = ["## Extensions (beyond the paper)", ""]
    kd = _load(results_dir, "kdtree_speedup")
    if kd is not None:
        lines.append(f"- KD-tree vs brute-force contrastive sampling "
                     f"(16k candidates): {kd['kdtree_s']:.3f}s vs "
                     f"{kd['bruteforce_s']:.3f}s.")
    noise = _load(results_dir, "ext_noise_models")
    if noise is not None:
        for model, stats in noise.items():
            lines.append(f"- Noise model `{model}`: ENLD F1 "
                         f"{stats['enld_f1']:.4f} vs Default "
                         f"{stats['default_f1']:.4f}.")
    conv = _load(results_dir, "ext_convnet")
    if conv is not None:
        lines.append(f"- Convolutional backbone: ENLD F1 "
                     f"{conv['smallconv']['f1']:.4f} with SmallConvNet vs "
                     f"{conv['tinyresnet']['f1']:.4f} with the MLP analog "
                     "(pipeline is backbone-agnostic).")
    track = _load(results_dir, "ext_loss_tracking")
    if track is not None:
        lines.append(
            f"- Loss-tracking families at η=0.2: ENLD F1 "
            f"{track['enld']['f1']:.4f} vs O2U "
            f"{track['o2u']['f1']:.4f} vs small-loss "
            f"{track['small_loss']['f1']:.4f}, at "
            f"{track['enld']['mean_process_train_samples']:.0f} vs "
            f"{track['o2u']['mean_process_train_samples']:.0f} training "
            "sample-epochs per request — the intro's efficiency claim.")
    if len(lines) == 2:
        lines.append("_No recorded extension results._")
    return "\n".join(lines)


HEADER = """# EXPERIMENTS — paper vs. measured

For every table and figure of the paper's evaluation (§V), this file
records the paper's reported numbers next to the numbers measured by
this reproduction's benchmark suite
(`pytest benchmarks/ --benchmark-only`; raw data in
`benchmarks/results/*.json`, regenerate this file with
`python -m repro report`).

**Reading guide.** The substrate differs from the paper's by design
(synthetic datasets, numpy MLP-analog models, CPU timing — DESIGN.md
documents every substitution), so *absolute* numbers differ. What must
hold — and is asserted by the benchmark suite itself — is the *shape*
of each result: who wins, how orderings move with noise rate, and where
the costs come from. Known bench-scale caveats are noted inline.
"""


DEVIATIONS = """## Known deviations at bench scale

Documented for transparency; none affects the asserted shapes.

1. **Topofilter's rank.** In the paper Topofilter is the strong
   runner-up; at bench scale it often falls below Default/CL on the
   100/200-class analogs. Its per-class largest-connected-component
   filter needs dense per-class clusters (the paper's CIFAR100 gives it
   ~330 samples per class per graph; the bench analog ~45). On the
   26-class EMNIST analog, where clusters are denser, it recovers its
   paper role as second-best. ENLD's lead over it holds everywhere.
2. **Absolute F1 levels.** Synthetic prototype data with a small
   inventory yields easier low-noise regimes (higher F1 than the paper
   at η=0.1) and harder high-noise regimes (lower F1 at η=0.4) than the
   real datasets; the noise-rate *trends* match.
3. **Wall-clock speedups.** The ENLD-vs-Topofilter process-time ratio
   depends on the inventory-to-arrival size ratio; the bench reproduces
   the paper's ~4x on the EMNIST analog and ~3x elsewhere, with the
   machine-independent work model (training sample-epochs) showing
   5–6x throughout.
4. **Policy/ablation margins.** Fig. 10 and Fig. 14 gaps are a few F1
   points here versus ~14 points in the paper, because the contrastive
   advantage scales with candidate-pool size; the orderings still
   reproduce (benches assert them on the high-noise regime where the
   gaps concentrate).
"""


def render_markdown(results_dir: str) -> str:
    """Render the full EXPERIMENTS.md body from recorded results."""
    sections: List[str] = [HEADER]
    sections.append(_fig3_section(results_dir))
    sections.append(_method_section(
        "fig04_emnist_methods", "fig4",
        "Fig. 4 — method comparison (EMNIST analog)", results_dir))
    sections.append(_method_section(
        "fig05_cifar_methods", "fig5",
        "Fig. 5 — method comparison (CIFAR100 analog)", results_dir))
    sections.append(_fig6_section(results_dir))
    sections.append(_method_section(
        "fig07_tiny_methods", "fig7",
        "Fig. 7 — method comparison (Tiny-ImageNet analog)", results_dir))
    sections.append(_fig8_section(results_dir))
    sections.append(_fig9_section(results_dir))
    sections.append(_fig10_section(results_dir))
    sections.append(_fig11_12_section(results_dir))
    sections.append(_table2_section(results_dir))
    sections.append(_fig13_section(results_dir))
    sections.append(_fig14_section(results_dir))
    sections.append(_extensions_section(results_dir))
    sections.append(DEVIATIONS.rstrip())
    return "\n\n".join(sections) + "\n"


def write_markdown(results_dir: str, output_path: str) -> None:
    """Render and write EXPERIMENTS.md."""
    with open(output_path, "w") as fh:
        fh.write(render_markdown(results_dir))
