"""Experiment presets shared by benchmarks, examples and tests.

A preset fixes everything the paper's §V-A configuration fixes: the
dataset analog, the model, ENLD's hyperparameters, and each baseline's
training budget.  Three sizes are provided:

- ``bench``: CPU-friendly defaults used by ``benchmarks/`` (subset of
  shards, fewer epochs) — minutes per figure;
- ``small``: even smaller, for integration tests — seconds;
- ``full``: closest to the paper's scale this substrate supports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..core.config import ENLDConfig

PAPER_NOISE_RATES: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4)


@dataclass(frozen=True)
class ExperimentPreset:
    """A fully specified experimental configuration."""

    dataset_preset: str
    scale: str = "bench"
    model_name: str = "tinyresnet"
    init_epochs: int = 15
    iterations: int = 5
    steps_per_iteration: int = 5
    contrastive_k: int = 3
    topofilter_epochs: int = 15
    topofilter_knn_k: int = 5
    topofilter_mixup: Optional[float] = None
    shard_limit: Optional[int] = None
    noise_rates: Tuple[float, ...] = PAPER_NOISE_RATES
    seed: int = 7

    def enld_config(self, **overrides) -> ENLDConfig:
        """The ENLDConfig this preset implies (overridable per figure)."""
        base = dict(
            model_name=self.model_name,
            init_epochs=self.init_epochs,
            iterations=self.iterations,
            steps_per_iteration=self.steps_per_iteration,
            contrastive_k=self.contrastive_k,
            seed=self.seed,
        )
        base.update(overrides)
        return ENLDConfig(**base)

    def with_overrides(self, **kwargs) -> "ExperimentPreset":
        return replace(self, **kwargs)


def bench_preset(dataset_preset: str = "cifar100_like") -> ExperimentPreset:
    """Benchmark-scale preset: all code paths, minutes of wall-clock.

    ``iterations`` follows the paper's relative setting (fewer for the
    easy EMNIST task, more for the hard ones) scaled to bench size.
    """
    iterations = 3 if dataset_preset == "emnist_like" else 5
    shard_limit = {"emnist_like": 5, "cifar100_like": 6,
                   "tiny_imagenet_like": 5}.get(dataset_preset, 6)
    # On the many-class analogs, per-class graphs are small; Topofilter
    # needs a sparser mutual graph, more training, and Mixup to produce
    # competitive features (tuned so it plays its paper role of the
    # strong-but-slow training-based baseline).
    emnist = dataset_preset == "emnist_like"
    return ExperimentPreset(
        dataset_preset=dataset_preset,
        scale="bench",
        init_epochs=25,
        iterations=iterations,
        shard_limit=shard_limit,
        topofilter_knn_k=5 if emnist else 4,
        topofilter_epochs=15 if emnist else 30,
        topofilter_mixup=None if emnist else 0.2,
    )


def small_preset(dataset_preset: str = "toy") -> ExperimentPreset:
    """Integration-test preset: seconds of wall-clock."""
    return ExperimentPreset(
        dataset_preset=dataset_preset,
        scale="bench" if dataset_preset == "toy" else "small",
        model_name="mlp",
        init_epochs=15,
        iterations=3,
        steps_per_iteration=5,
        topofilter_epochs=8,
        shard_limit=2,
        noise_rates=(0.2,),
    )


def full_preset(dataset_preset: str = "cifar100_like") -> ExperimentPreset:
    """Largest preset: closest to the paper's configuration.

    Uses the paper's iteration counts (t=5 for EMNIST, t=17 otherwise)
    and all shards.  Expect tens of minutes per figure on CPU.
    """
    iterations = 5 if dataset_preset == "emnist_like" else 17
    return ExperimentPreset(
        dataset_preset=dataset_preset,
        scale="full",
        init_epochs=30,
        iterations=iterations,
        topofilter_epochs=30,
        shard_limit=None,
    )
