"""Experiment drivers — one per table and figure of the paper's §V.

Each ``figN_*`` function runs the corresponding experiment on a given
:class:`~repro.experiments.presets.ExperimentPreset` and returns a
plain-dict result whose keys mirror the figure's series; the
``benchmarks/`` suite calls these and prints paper-style tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.missing import missing_label_report
from ..eval.metrics import score_detection, score_trace
from ..eval.runner import MethodReport, compare_detectors, run_detector
from ..nn.metrics import evaluate_accuracy
from .harness import build_baselines, build_enld, build_environment
from .presets import ExperimentPreset
from .theory import contribution_experiment

METHOD_ORDER = ("default", "cl_prune_by_class", "cl_prune_by_noise_rate",
                "topofilter", "enld")


def _report_dict(report: MethodReport) -> dict:
    return {
        "precision": report.mean_precision,
        "recall": report.mean_recall,
        "f1": report.mean_f1,
        "mean_process_seconds": report.cost.mean_process_seconds,
        "mean_process_train_samples": report.cost.mean_process_train_samples,
        "setup_seconds": report.cost.setup_seconds,
    }


# ----------------------------------------------------------------------
# Fig. 3 — contribution of sample-addition strategies
# ----------------------------------------------------------------------

def fig3_contribution(preset: ExperimentPreset) -> dict:
    """Loss after one epoch with Random / Nearest-Only / Nearest-Related
    additions vs. the Origin loss, per noise rate."""
    out: Dict[str, dict] = {}
    for eta in preset.noise_rates:
        env = build_environment(preset, eta)
        out[f"eta={eta}"] = contribution_experiment(env)
    return out


# ----------------------------------------------------------------------
# Figs. 4, 5, 7 — method comparison per dataset; Fig. 8 — time cost
# ----------------------------------------------------------------------

def method_comparison(preset: ExperimentPreset,
                      noise_rates: Optional[Sequence[float]] = None) -> dict:
    """P/R/F1 and cost for Default, CL-1, CL-2, Topofilter and ENLD.

    This single driver backs Fig. 4 (EMNIST), Fig. 5 (CIFAR100) and
    Fig. 7 (Tiny-ImageNet) — the dataset is chosen by the preset — and
    its timing columns back Fig. 8.
    """
    noise_rates = tuple(noise_rates or preset.noise_rates)
    results: Dict[str, dict] = {}
    for eta in noise_rates:
        env = build_environment(preset, eta)
        enld = build_enld(env)
        enld_report = run_detector(enld, env.arrivals, "enld",
                                   setup_seconds=enld.setup_seconds,
                                   setup_train_samples=enld.setup_train_samples)
        baseline_reports = compare_detectors(
            build_baselines(env, enld), env.arrivals,
            setup_seconds={
                # Default/CL reuse ENLD's general-model setup (§V-B).
                "default": enld.setup_seconds,
                "cl_prune_by_class": enld.setup_seconds,
                "cl_prune_by_noise_rate": enld.setup_seconds,
                "topofilter": 0.0,
            })
        per_method = {name: _report_dict(rep)
                      for name, rep in baseline_reports.items()}
        per_method["enld"] = _report_dict(enld_report)
        per_method["enld"]["speedup_over_topofilter"] = (
            enld_report.cost.speedup_over(baseline_reports["topofilter"].cost)
            if "topofilter" in baseline_reports else float("nan"))
        per_method["enld"]["work_speedup_over_topofilter"] = (
            enld_report.cost.work_speedup_over(
                baseline_reports["topofilter"].cost)
            if "topofilter" in baseline_reports else float("nan"))
        results[f"eta={eta}"] = per_method
    summary = {
        method: float(np.mean([results[key][method]["f1"]
                               for key in results]))
        for method in results[next(iter(results))]
    }
    return {"per_noise_rate": results, "mean_f1": summary,
            "dataset": preset.dataset_preset}


def fig4_emnist(preset: Optional[ExperimentPreset] = None) -> dict:
    """Fig. 4: method comparison on the EMNIST analog."""
    from .presets import bench_preset
    return method_comparison(preset or bench_preset("emnist_like"))


def fig5_cifar100(preset: Optional[ExperimentPreset] = None) -> dict:
    """Fig. 5: method comparison on the CIFAR100 analog."""
    from .presets import bench_preset
    return method_comparison(preset or bench_preset("cifar100_like"))


def fig7_tiny_imagenet(preset: Optional[ExperimentPreset] = None) -> dict:
    """Fig. 7: method comparison on the Tiny-ImageNet analog."""
    from .presets import bench_preset
    return method_comparison(preset or bench_preset("tiny_imagenet_like"))


def fig8_time_cost(presets: Sequence[ExperimentPreset],
                   noise_rate: float = 0.2) -> dict:
    """Setup + process time per method per dataset (one noise rate)."""
    out = {}
    for preset in presets:
        comparison = method_comparison(preset, noise_rates=(noise_rate,))
        out[preset.dataset_preset] = comparison["per_noise_rate"][
            f"eta={noise_rate}"]
    return out


# ----------------------------------------------------------------------
# Fig. 6 — different network architectures
# ----------------------------------------------------------------------

def fig6_networks(preset: ExperimentPreset,
                  model_names: Sequence[str] = ("densenet121", "resnet164"),
                  noise_rate: float = 0.2) -> dict:
    """ENLD vs Topofilter with alternative architectures (CIFAR100)."""
    out: Dict[str, dict] = {}
    for model_name in model_names:
        variant = preset.with_overrides(model_name=model_name)
        env = build_environment(variant, noise_rate)
        enld = build_enld(env)
        enld_rep = run_detector(enld, env.arrivals, "enld",
                                setup_seconds=enld.setup_seconds)
        topo = build_baselines(env, enld)["topofilter"]
        topo_rep = run_detector(topo, env.arrivals, "topofilter")
        out[model_name] = {
            "enld": _report_dict(enld_rep),
            "topofilter": _report_dict(topo_rep),
            "speedup": enld_rep.cost.speedup_over(topo_rep.cost),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 9 — detection trajectory; Fig. 13b — ambiguous-set size
# ----------------------------------------------------------------------

def fig9_training_process(preset: ExperimentPreset) -> dict:
    """Per-iteration P/R/F1 of ENLD, averaged over shards, per η."""
    out: Dict[str, dict] = {}
    for eta in preset.noise_rates:
        env = build_environment(preset, eta)
        enld = build_enld(env)
        per_iter: List[List[dict]] = []
        ambiguous: List[List[int]] = []
        for dataset in env.arrivals:
            result = enld.detect(dataset)
            per_iter.append([s.as_dict() for s in
                             score_trace(result, dataset)])
            ambiguous.append([snap.num_ambiguous for snap in result.trace])
        iters = min(len(t) for t in per_iter)
        series = {
            metric: [float(np.mean([t[i][metric] for t in per_iter]))
                     for i in range(iters)]
            for metric in ("precision", "recall", "f1")
        }
        series["num_ambiguous"] = [
            float(np.mean([a[i] for a in ambiguous])) for i in range(iters)]
        out[f"eta={eta}"] = series
    return out


def fig13b_ambiguous_counts(preset: ExperimentPreset,
                            noise_rate: float = 0.2) -> dict:
    """Number of ambiguous samples per iteration (subset of Fig. 9 data)."""
    process = fig9_training_process(
        preset.with_overrides(noise_rates=(noise_rate,)))
    return {"num_ambiguous": process[f"eta={noise_rate}"]["num_ambiguous"]}


# ----------------------------------------------------------------------
# Fig. 10 — sampling-policy comparison
# ----------------------------------------------------------------------

def fig10_policies(preset: ExperimentPreset,
                   policies: Sequence[str] = (
                       "contrastive", "random", "highest_confidence",
                       "least_confidence", "entropy", "pseudo")) -> dict:
    """Swap ENLD's selection policy, keeping everything else fixed."""
    out: Dict[str, dict] = {}
    for eta in preset.noise_rates:
        env = build_environment(preset, eta)
        per_policy = {}
        for policy in policies:
            enld = build_enld(env, sampling_policy=policy)
            report = run_detector(enld, env.arrivals, f"{policy}-enld",
                                  setup_seconds=enld.setup_seconds)
            per_policy[policy] = _report_dict(report)
        out[f"eta={eta}"] = per_policy
    mean_f1 = {
        policy: float(np.mean([out[key][policy]["f1"] for key in out]))
        for policy in policies
    }
    return {"per_noise_rate": out, "mean_f1": mean_f1}


# ----------------------------------------------------------------------
# Figs. 11 & 12 — hyperparameter k sweep
# ----------------------------------------------------------------------

def fig11_12_k_sweep(preset: ExperimentPreset,
                     ks: Sequence[int] = (1, 2, 3, 4)) -> dict:
    """P/R/F1 (Fig. 11) and process time (Fig. 12) for k ∈ {1..4}."""
    out: Dict[str, dict] = {}
    for eta in preset.noise_rates:
        env = build_environment(preset, eta)
        per_k = {}
        for k in ks:
            enld = build_enld(env, contrastive_k=k)
            report = run_detector(enld, env.arrivals, f"k={k}",
                                  setup_seconds=enld.setup_seconds)
            per_k[f"k={k}"] = _report_dict(report)
        out[f"eta={eta}"] = per_k
    mean_over_eta = {
        f"k={k}": {
            "f1": float(np.mean(
                [out[key][f"k={k}"]["f1"] for key in out])),
            "mean_process_seconds": float(np.mean(
                [out[key][f"k={k}"]["mean_process_seconds"] for key in out])),
        }
        for k in ks
    }
    return {"per_noise_rate": out, "mean": mean_over_eta}


# ----------------------------------------------------------------------
# Table II — model update
# ----------------------------------------------------------------------

def table2_model_update(preset: ExperimentPreset) -> dict:
    """Validation accuracy (true labels) before/after the model update."""
    out: Dict[str, dict] = {}
    for eta in preset.noise_rates:
        env = build_environment(preset, eta)
        enld = build_enld(env)
        acc_before = evaluate_accuracy(enld.model, env.pool,
                                       use_true_labels=True)
        for dataset in env.arrivals:
            enld.detect(dataset)
        clean_count = len(enld.clean_inventory)
        enld.update_model()
        acc_after = evaluate_accuracy(enld.model, env.pool,
                                      use_true_labels=True)
        out[f"eta={eta}"] = {
            "origin_accuracy": acc_before,
            "update_accuracy": acc_after,
            "clean_inventory_selected": clean_count,
        }
    return out


# ----------------------------------------------------------------------
# Fig. 13a — missing labels
# ----------------------------------------------------------------------

def fig13a_missing_labels(preset: ExperimentPreset,
                          missing_fractions: Sequence[float] = (
                              0.25, 0.5, 0.75),
                          noise_rate: float = 0.2) -> dict:
    """Pseudo-label F1 and detection F1 at several missing rates."""
    out: Dict[str, dict] = {}
    for fraction in missing_fractions:
        env = build_environment(preset, noise_rate,
                                missing_fraction=fraction)
        enld = build_enld(env)
        pseudo_f1s, detect_f1s = [], []
        for dataset in env.arrivals:
            result = enld.detect(dataset)
            report = missing_label_report(result, dataset)
            pseudo_f1s.append(report["pseudo_f1"])
            detect_f1s.append(score_detection(result, dataset).f1)
        out[f"missing={fraction}"] = {
            "pseudo_f1": float(np.mean(pseudo_f1s)),
            "detection_f1": float(np.mean(detect_f1s)),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 14 — ablation study
# ----------------------------------------------------------------------

ABLATIONS = ("origin", "enld-1", "enld-2", "enld-3", "enld-4")


def fig14_ablation(preset: ExperimentPreset,
                   variants: Sequence[str] = ABLATIONS) -> dict:
    """The paper's ablations: drop one ENLD component at a time."""
    out: Dict[str, dict] = {}
    for eta in preset.noise_rates:
        env = build_environment(preset, eta)
        per_variant = {}
        for variant in variants:
            config = env.preset.enld_config().ablation(variant)
            from ..core.enld import ENLD
            enld = ENLD(config).initialize(env.inventory,
                                           num_classes=env.num_classes)
            report = run_detector(enld, env.arrivals, variant,
                                  setup_seconds=enld.setup_seconds)
            per_variant[variant] = _report_dict(report)
        out[f"eta={eta}"] = per_variant
    mean_f1 = {
        variant: float(np.mean([out[key][variant]["f1"] for key in out]))
        for variant in variants
    }
    return {"per_noise_rate": out, "mean_f1": mean_f1}
