"""Hot-path detection benchmark: seed implementation vs facade + cache.

The paper's efficiency claims (Fig. 8, Fig. 12) live in the regime
where the inventory dwarfs each arrival, so per-arrival cost is
dominated by *detection overhead* — forward passes over the candidate
pool, per-class index builds and k-NN queries — not by fine-tuning.
The default bench presets compress that regime away (tiny inventories
make fine-tuning dominate), so this harness rebuilds it: few classes,
many samples per class, small arrivals at a high noise rate.

Two full detection streams run in the same process on the same world:

- **legacy** — the seed implementation's cost structure: two-pass
  model views (separate ``predict_proba`` + ``features`` forwards),
  per-class KD-trees, no feature cache;
- **hot** — the DESIGN.md §11 path: fused single-forward views, the
  auto-selecting index facade (brute BLAS at this dimensionality) and
  the content-keyed feature cache.

Detection verdicts must be bit-identical between the two runs — the
harness asserts it — so the measured ratio is pure wall-clock, and
being a same-process ratio it is robust on shared CI runners where
absolute-seconds gates flake.

A Fig. 12-style sweep times the contrastive query stage alone across
``k`` for the kdtree and brute backends.

``gate_hotpath`` is the CI perf-bench gate: speedup floor, baseline
ratio within tolerance, per-stage work counts and detection counters
against ``benchmarks/baselines/hotpath_smoke.json``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..core import detector as detector_module
from ..core.config import ENLDConfig
from ..core.enld import ENLD
from ..core.samplesets import ModelView
from ..datasets import generate, split_inventory_incremental, toy
from ..index.classindex import ClassFeatureIndex
from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..noise import corrupt_labels, pair_asymmetric
from ..obs import Stopwatch, Tracer, flatten_spans
from ..obs.export import compare_stage_work

#: Acceptance floor for the per-arrival wall-clock improvement.
HOTPATH_SPEEDUP_FLOOR = 3.0

#: Fig. 12-style contrastive sample sizes swept by the query bench.
FIG12_KS = (1, 4, 8)

#: Counters gated against the baseline (all deterministic per seed).
GATED_COUNTERS = (
    "classindex.queries",
    "classindex.builds",
    "featurecache.hits",
    "featurecache.misses",
    "detector.vote_rounds",
)


def _twopass_view(model: Classifier, dataset: LabeledDataset,
                  batch_size: int = 256, cache: object = None) -> ModelView:
    """The seed implementation's view computation: two forward passes."""
    x = dataset.flat_x()
    return ModelView(probs=model.predict_proba(x, batch_size=batch_size),
                     features=model.features(x, batch_size=batch_size))


@contextmanager
def seed_cost_structure() -> Iterator[None]:
    """Swap the detector's fused view computation for the two-pass one.

    Only the *cost structure* changes — outputs are bit-identical (the
    fused path is row-wise equal by construction, pinned by
    ``tests/test_featurecache.py``) — so the legacy stream measures
    what the seed implementation would have spent on the same world.
    """
    saved = detector_module.compute_view
    detector_module.compute_view = _twopass_view
    try:
        yield
    finally:
        detector_module.compute_view = saved


def build_world(num_classes: int = 4, samples_per_class: int = 7500,
                num_arrivals: int = 4, arrival_size: int = 200,
                noise_rate: float = 0.4, seed: int = 11
                ) -> Tuple[LabeledDataset, List[LabeledDataset], int]:
    """Materialise the large-inventory / small-arrival world."""
    spec = toy(num_classes=num_classes, samples_per_class=samples_per_class)
    data = generate(spec, seed=seed)
    rng = np.random.default_rng(seed + 1)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(num_classes, noise_rate)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    if num_arrivals * arrival_size > len(pool):
        raise ValueError(
            f"pool of {len(pool)} cannot serve {num_arrivals} arrivals "
            f"of {arrival_size}")
    arrivals = [
        corrupt_labels(
            pool.subset(np.arange(i * arrival_size, (i + 1) * arrival_size),
                        name=f"hotpath/d{i}"),
            transition, np.random.default_rng(seed + 20 + i))
        for i in range(num_arrivals)
    ]
    return inventory, arrivals, num_classes


def _bench_config(seed: int, **overrides: object) -> ENLDConfig:
    """Single-iteration config keeping fine-tuning a minor cost."""
    base: Dict[str, object] = dict(
        model_name="tinyresnet", init_epochs=4, iterations=1,
        steps_per_iteration=1, warmup_epochs=0, contrastive_k=1,
        seed=seed)
    base.update(overrides)
    return ENLDConfig(**base)  # type: ignore[arg-type]


def _run_stream(inventory: LabeledDataset, arrivals: List[LabeledDataset],
                num_classes: int, seed: int, legacy: bool) -> dict:
    """One full detection stream; returns timings, verdicts and trace."""
    overrides: Dict[str, object] = (
        dict(index_backend="kdtree", feature_cache=False) if legacy else {})
    config = _bench_config(seed, **overrides)
    tracer = Tracer()
    if legacy:
        with seed_cost_structure():
            enld = ENLD(config, tracer=tracer).initialize(
                inventory, num_classes=num_classes)
            for arrival in arrivals:
                enld.detect(arrival)
    else:
        enld = ENLD(config, tracer=tracer).initialize(
            inventory, num_classes=num_classes)
        for arrival in arrivals:
            enld.detect(arrival)
    return {
        "setup_seconds": enld.setup_seconds,
        "arrival_seconds": [r.process_seconds for r in enld.results],
        "verdicts": [(r.clean_mask.tobytes(), r.noisy_mask.tobytes(),
                      r.inventory_clean_positions.tobytes(),
                      None if r.pseudo_labels is None
                      else r.pseudo_labels.tobytes())
                     for r in enld.results],
        "trace": tracer.to_dict(),
        "cache": (enld.feature_cache.stats()
                  if enld.feature_cache is not None else None),
        "enld": enld,
    }


def _fig12_sweep(enld: ENLD, arrival: LabeledDataset,
                 ks: Tuple[int, ...] = FIG12_KS) -> Dict[str, dict]:
    """Time the contrastive query stage alone, per backend, across k."""
    assert enld.model is not None and enld.inventory_candidates is not None
    candidates = enld.inventory_candidates
    features = enld.model.predict_view(candidates.flat_x())[1]
    queries = enld.model.predict_view(arrival.flat_x())[1]
    targets = arrival.y
    out: Dict[str, dict] = {}
    for k in ks:
        row: Dict[str, float] = {}
        for backend in ("kdtree", "brute"):
            index = ClassFeatureIndex(features, candidates.y,
                                      backend=backend)
            watch = Stopwatch()
            with watch:
                index.query_batch(queries, targets, k)
            row[f"{backend}_seconds"] = watch.seconds
        row["speedup"] = (row["kdtree_seconds"]
                          / max(row["brute_seconds"], 1e-9))
        out[str(k)] = row
    return out


def _mean_after_first(values: List[float]) -> float:
    """Steady-state mean: the first arrival carries warm-up noise."""
    tail = values[1:] if len(values) > 1 else values
    return float(np.mean(tail))


def run_hotpath_bench(num_classes: int = 4, samples_per_class: int = 7500,
                      num_arrivals: int = 4, arrival_size: int = 200,
                      noise_rate: float = 0.4, seed: int = 11) -> dict:
    """Run both streams plus the Fig. 12 sweep; returns the full result."""
    inventory, arrivals, n_cls = build_world(
        num_classes=num_classes, samples_per_class=samples_per_class,
        num_arrivals=num_arrivals, arrival_size=arrival_size,
        noise_rate=noise_rate, seed=seed)
    legacy = _run_stream(inventory, arrivals, n_cls, seed + 2, legacy=True)
    hot = _run_stream(inventory, arrivals, n_cls, seed + 2, legacy=False)
    fig12 = _fig12_sweep(hot["enld"], arrivals[-1])

    legacy_mean = _mean_after_first(legacy["arrival_seconds"])
    hot_mean = _mean_after_first(hot["arrival_seconds"])
    stage_seconds = _stage_comparison(legacy["trace"], hot["trace"])
    hot_counters = hot["trace"].get("counters", {})
    return {
        "meta": {
            "num_classes": num_classes,
            "samples_per_class": samples_per_class,
            "num_arrivals": num_arrivals,
            "arrival_size": arrival_size,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "legacy": {"setup_seconds": legacy["setup_seconds"],
                   "arrival_seconds": legacy["arrival_seconds"],
                   "mean_arrival_seconds": legacy_mean},
        "hot": {"setup_seconds": hot["setup_seconds"],
                "arrival_seconds": hot["arrival_seconds"],
                "mean_arrival_seconds": hot_mean,
                "feature_cache": hot["cache"]},
        "speedup": legacy_mean / max(hot_mean, 1e-9),
        "verdicts_identical": legacy["verdicts"] == hot["verdicts"],
        "stage_seconds": stage_seconds,
        "trace": hot["trace"],
        "counters": {name: hot_counters.get(name, 0)
                     for name in GATED_COUNTERS},
        "fig12": fig12,
    }


def _stage_comparison(legacy_trace: dict, hot_trace: dict
                      ) -> Dict[str, dict]:
    """Per-stage wall-clock of both streams, with the ratio."""
    legacy_flat = flatten_spans(legacy_trace)
    hot_flat = flatten_spans(hot_trace)
    out: Dict[str, dict] = {}
    for path in sorted(set(legacy_flat) | set(hot_flat)):
        lsec = legacy_flat.get(path, {}).get("wall_seconds", 0.0)
        hsec = hot_flat.get(path, {}).get("wall_seconds", 0.0)
        out[path] = {
            "legacy_seconds": lsec,
            "hot_seconds": hsec,
            "speedup": (lsec / hsec) if hsec > 0 else None,
        }
    return out


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------

def gate_hotpath(result: dict, baseline: dict, tolerance: float = 0.15,
                 speedup_tolerance: float = 0.25) -> List[str]:
    """The perf-bench gate; returns violations (empty = pass).

    Checks, in order of severity:

    1. verdict parity — legacy and hot streams must select the exact
       same clean/noisy/inventory sets (bit-identical);
    2. the absolute speedup floor (``HOTPATH_SPEEDUP_FLOOR``);
    3. the measured speedup against the committed baseline ratio,
       within ``speedup_tolerance`` (ratios are same-process so they
       transfer across machines, but they still carry scheduler noise
       — hence a looser band than the deterministic checks below);
    4. per-stage sample-epoch work counts against the baseline trace;
    5. detection counters (queries, builds, cache hits/misses, vote
       rounds) against the baseline, within ``tolerance``;
    6. the Fig. 12 sweep — brute must not lose to kdtree at any k.
    """
    violations: List[str] = []
    if not result.get("verdicts_identical", False):
        violations.append(
            "verdict parity: legacy and hot streams disagree")
    speedup = float(result.get("speedup", 0.0))
    floor = float(baseline.get("floor", HOTPATH_SPEEDUP_FLOOR))
    if speedup < floor:
        violations.append(
            f"speedup {speedup:.2f}x below the acceptance floor "
            f"{floor:.2f}x")
    base_speedup = float(baseline.get("speedup", 0.0))
    if base_speedup and speedup < base_speedup * (1.0 - speedup_tolerance):
        violations.append(
            f"speedup {speedup:.2f}x regressed more than "
            f"{speedup_tolerance:.0%} from baseline {base_speedup:.2f}x")
    base_trace = baseline.get("trace")
    if base_trace:
        violations.extend(compare_stage_work(
            result.get("trace", {}), base_trace, tolerance=tolerance))
    for name, base_value in (baseline.get("counters") or {}).items():
        if base_value < 1:
            continue
        got = float(result.get("counters", {}).get(name, 0))
        rel = abs(got - base_value) / base_value
        if rel > tolerance:
            violations.append(
                f"counter {name}: {got:g} vs baseline {base_value:g} "
                f"({rel:+.1%} > ±{tolerance:.0%})")
    for k, row in (result.get("fig12") or {}).items():
        if row["speedup"] < 1.0:
            violations.append(
                f"fig12 k={k}: brute slower than kdtree "
                f"({row['speedup']:.2f}x)")
    return violations


def baseline_payload(result: dict) -> dict:
    """The committed-baseline form of a bench result."""
    return {
        "floor": HOTPATH_SPEEDUP_FLOOR,
        "speedup": result["speedup"],
        "trace": result["trace"],
        "counters": result["counters"],
        "meta": result["meta"],
    }


def format_hotpath_report(result: dict) -> str:
    """Human-readable per-stage speedup table plus the summary lines."""
    lines = ["hot-path bench: legacy (two-pass views, kdtree, no cache) "
             "vs hot (fused views, auto facade, feature cache)", ""]
    header = f"{'stage':<42} {'legacy_s':>9} {'hot_s':>9} {'speedup':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for path, row in result["stage_seconds"].items():
        ratio = row["speedup"]
        lines.append(
            f"{path:<42} {row['legacy_seconds']:>9.3f} "
            f"{row['hot_seconds']:>9.3f} "
            f"{(f'{ratio:.2f}x' if ratio is not None else '—'):>8}")
    lines.append("")
    lines.append(
        f"per-arrival: legacy "
        f"{result['legacy']['mean_arrival_seconds']:.3f}s  hot "
        f"{result['hot']['mean_arrival_seconds']:.3f}s  "
        f"speedup {result['speedup']:.2f}x "
        f"(floor {HOTPATH_SPEEDUP_FLOOR:.1f}x)")
    lines.append(
        f"verdicts identical: {result['verdicts_identical']}  "
        f"feature cache: {result['hot']['feature_cache']}")
    lines.append("")
    lines.append("fig12-style query sweep (contrastive stage only):")
    for k, row in result["fig12"].items():
        lines.append(
            f"  k={k}: kdtree {row['kdtree_seconds']*1000:.1f}ms  "
            f"brute {row['brute_seconds']*1000:.1f}ms  "
            f"({row['speedup']:.1f}x)")
    return "\n".join(lines)
