"""``ingest_storm`` benchmark: concurrent vs sequential ingestion.

The ENLD paper frames detection over an *incremental data lake*: many
datasets arriving continuously against a large inventory.  A real lake
submission is fetch-then-detect — the arrival's payload is pulled from
lake storage (I/O latency) before the CPU/BLAS detection runs — and a
one-at-a-time loop pays both costs serially.  The DESIGN.md §14
pipeline overlaps them: ``N`` producer threads fetch their streams
concurrently while the worker pool keeps detection saturated, so
throughput approaches the detection-bound limit instead of the
fetch+detect sum.

The bench builds a 10^6+-sample world (paper-scale inventory, small
arrivals), models the lake fetch as a deterministic per-arrival
latency (``rtt + per_sample * n`` seconds — a *simulated* wait, so the
measured contrast is scheduling, not noise), and runs the same storm
twice on identically initialised platforms:

- **serial** — ``IngestConfig(mode="serial")``: the sequential
  baseline, round-robin over the split streams (exactly the parent
  stream's arrival order);
- **concurrent** — ``mode="thread"``: N producer streams + a worker
  pool over a :class:`~repro.datalake.shards.ShardedInventory`-backed
  platform.

Both arms derive every detection RNG from ``(seed, dataset name)``, so
the harness asserts **bit-identical verdicts** — the speedup is pure
scheduling.  ``gate_ingest_storm`` is the CI perf-bench gate: verdict
parity, the ≥2.5× datasets/s floor, the committed-baseline ratio, the
deterministic counters, and the backpressure invariants (queue depth
never exceeds capacity, in-flight detections never exceed the pool).

Verdict fingerprints are compared in-process only and never written to
the baseline file: absolute digests do not transfer across BLAS
builds, while same-process parity and counter counts do.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..core.config import ENLDConfig
from ..datalake.ingest import IngestConfig, IngestPipeline, StormReport
from ..datalake.platform import NoisyLabelPlatform
from ..datalake.shards import ShardedInventory
from ..datalake.stream import ArrivalStream
from ..datasets import generate, toy
from ..datasets.splits import ShardPlan
from ..nn.data import LabeledDataset
from ..noise import corrupt_labels, pair_asymmetric
from ..obs import Tracer, use_tracer

#: Acceptance floor for concurrent-over-serial datasets/s.
STORM_SPEEDUP_FLOOR = 2.5

#: Counters gated against the baseline (all deterministic per seed).
GATED_COUNTERS = (
    "ingest.datasets",
    "ingest.samples",
    "platform.submissions",
    "classindex.queries",
    "detector.vote_rounds",
)


def make_fetch(rtt_seconds: float, per_sample_seconds: float
               ) -> "Callable[[LabeledDataset], LabeledDataset]":
    """A deterministic lake-fetch model: sleep ``rtt + per_sample*n``.

    The wait is exact (no jitter), so serial and concurrent arms see
    identical per-arrival latencies and the measured contrast is the
    pipeline's overlap, not timing noise.
    """

    def fetch(dataset: LabeledDataset) -> LabeledDataset:
        time.sleep(rtt_seconds + per_sample_seconds * len(dataset))
        return dataset

    return fetch


def build_storm_world(num_classes: int = 8,
                      samples_per_class: int = 133_000,
                      inventory_size: int = 1_050_000,
                      pool_size: int = 4_800,
                      num_arrivals: int = 8,
                      noise_rate: float = 0.3, seed: int = 11
                      ) -> Tuple[LabeledDataset, ArrivalStream, int]:
    """The paper-scale world: 10^6+ inventory, small arrival storm."""
    spec = toy(num_classes=num_classes,
               samples_per_class=samples_per_class)
    data = generate(spec, seed=seed)
    if inventory_size + pool_size > len(data):
        raise ValueError(
            f"{len(data)} generated samples cannot serve an inventory "
            f"of {inventory_size} plus a pool of {pool_size}")
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(len(data))
    transition = pair_asymmetric(num_classes, noise_rate)
    inventory = corrupt_labels(
        data.subset(order[:inventory_size], name="storm/inventory"),
        transition, rng)
    pool = data.subset(order[inventory_size:inventory_size + pool_size],
                       name="storm/pool")
    stream = ArrivalStream(
        pool, ShardPlan(num_shards=num_arrivals, classes_per_shard=2),
        transition=transition, num_classes=num_classes, seed=seed + 2)
    return inventory, stream, num_classes


def _storm_config(seed: int) -> ENLDConfig:
    """Throughput-regime config: detection cost is index/view-bound."""
    return ENLDConfig(
        model_name="mlp", model_kwargs={"hidden": 48}, init_epochs=2,
        iterations=1, steps_per_iteration=1, warmup_epochs=0,
        contrastive_k=1, inventory_train_fraction=0.02, seed=seed)


def _verdict_fingerprints(report: StormReport) -> Dict[str, tuple]:
    """Per-dataset verdict digests (compared in-process only)."""
    out: Dict[str, tuple] = {}
    for name, submission in sorted(report.reports.items()):
        result = submission.result
        if result is None:
            out[name] = ("quarantined",)
            continue
        out[name] = (
            result.clean_mask.tobytes(), result.noisy_mask.tobytes(),
            np.sort(np.asarray(
                result.inventory_clean_positions)).tobytes(),
            None if result.pseudo_labels is None
            else result.pseudo_labels.tobytes())
    return out


def run_ingest_storm(num_classes: int = 8,
                     samples_per_class: int = 133_000,
                     inventory_size: int = 1_050_000,
                     pool_size: int = 4_800,
                     num_arrivals: int = 8,
                     streams: int = 4, workers: int = 4,
                     queue_capacity: int = 8,
                     rtt_seconds: float = 2.0,
                     per_sample_seconds: float = 0.02,
                     noise_rate: float = 0.3, seed: int = 11,
                     buckets_per_class: int = 4) -> dict:
    """Run both arms of the storm; returns the full result dict."""
    inventory, stream, n_cls = build_storm_world(
        num_classes=num_classes, samples_per_class=samples_per_class,
        inventory_size=inventory_size, pool_size=pool_size,
        num_arrivals=num_arrivals, noise_rate=noise_rate, seed=seed)
    config = _storm_config(seed + 3)
    fetch = make_fetch(rtt_seconds, per_sample_seconds)

    # Serial arm: monolithic inventory, sequential baseline.
    serial_platform = NoisyLabelPlatform(inventory, config=config,
                                         num_classes=n_cls)
    serial_report = IngestPipeline(
        serial_platform, IngestConfig(mode="serial"),
        fetch=fetch).run(stream.split(streams))

    # Concurrent arm: the same inventory behind the sharded store
    # (bit-identical insertion-order view), N streams + worker pool.
    sharded = ShardedInventory.from_dataset(
        inventory, num_classes=n_cls,
        buckets_per_class=buckets_per_class)
    concurrent_platform = NoisyLabelPlatform(sharded, config=config,
                                             num_classes=n_cls)
    tracer = Tracer()
    with use_tracer(tracer):
        concurrent_report = IngestPipeline(
            concurrent_platform,
            IngestConfig(mode="thread", workers=workers,
                         queue_capacity=queue_capacity),
            fetch=fetch).run(stream.split(streams))
    trace = tracer.to_dict()
    counters = trace.get("counters", {})

    serial_fp = _verdict_fingerprints(serial_report)
    concurrent_fp = _verdict_fingerprints(concurrent_report)
    speedup = (serial_report.seconds
               / max(concurrent_report.seconds, 1e-9))
    return {
        "meta": {
            "num_classes": num_classes,
            "samples_per_class": samples_per_class,
            "inventory_size": inventory_size,
            "pool_size": pool_size,
            "num_arrivals": num_arrivals,
            "streams": streams,
            "workers": workers,
            "queue_capacity": queue_capacity,
            "rtt_seconds": rtt_seconds,
            "per_sample_seconds": per_sample_seconds,
            "noise_rate": noise_rate,
            "seed": seed,
            "buckets_per_class": buckets_per_class,
            "shard_count": sharded.num_shards,
        },
        "serial": _arm_payload(serial_report),
        "concurrent": _arm_payload(concurrent_report),
        "speedup": speedup,
        "verdicts_identical": serial_fp == concurrent_fp,
        "counters": {name: counters.get(name, 0)
                     for name in GATED_COUNTERS},
        "trace": trace,
    }


def _arm_payload(report: StormReport) -> dict:
    return {
        "seconds": report.seconds,
        "datasets": report.datasets,
        "samples": report.samples,
        "datasets_per_second": report.datasets_per_second,
        "samples_per_second": report.samples_per_second,
        "quarantined": report.quarantined,
        "degraded": report.degraded,
        "max_queue_depth": report.max_queue_depth,
        "max_inflight": report.max_inflight,
    }


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------

def gate_ingest_storm(result: dict, baseline: dict,
                      tolerance: float = 0.15,
                      speedup_tolerance: float = 0.25) -> List[str]:
    """The perf-bench gate; returns violations (empty = pass).

    Checks, in order of severity:

    1. verdict parity — serial and concurrent arms must produce
       bit-identical verdicts for every arrival;
    2. the absolute datasets/s speedup floor
       (``STORM_SPEEDUP_FLOOR``);
    3. the measured speedup against the committed baseline, within
       ``speedup_tolerance`` (the fetch latency is simulated, so the
       ratio transfers across machines; detection-time share still
       varies — hence the looser band);
    4. the backpressure invariants: queue depth capped by the
       configured capacity, in-flight detections by the worker count;
    5. deterministic counters (datasets, samples, submissions,
       queries, vote rounds) against the baseline within
       ``tolerance``.
    """
    violations: List[str] = []
    if not result.get("verdicts_identical", False):
        violations.append(
            "verdict parity: serial and concurrent arms disagree")
    speedup = float(result.get("speedup", 0.0))
    floor = float(baseline.get("floor", STORM_SPEEDUP_FLOOR))
    if speedup < floor:
        violations.append(
            f"speedup {speedup:.2f}x below the acceptance floor "
            f"{floor:.2f}x")
    base_speedup = float(baseline.get("speedup", 0.0))
    if base_speedup and speedup < base_speedup * (1.0 - speedup_tolerance):
        violations.append(
            f"speedup {speedup:.2f}x regressed more than "
            f"{speedup_tolerance:.0%} from baseline {base_speedup:.2f}x")
    concurrent = result.get("concurrent", {})
    meta = result.get("meta", {})
    capacity = int(meta.get("queue_capacity", 0))
    if capacity and int(concurrent.get("max_queue_depth", 0)) > capacity:
        violations.append(
            f"backpressure: queue depth "
            f"{concurrent.get('max_queue_depth')} exceeded the "
            f"capacity {capacity}")
    workers = int(meta.get("workers", 0))
    if workers and int(concurrent.get("max_inflight", 0)) > workers + \
            capacity:
        violations.append(
            f"inflight {concurrent.get('max_inflight')} exceeded "
            f"workers+capacity {workers + capacity}")
    for name, base_value in (baseline.get("counters") or {}).items():
        if base_value < 1:
            continue
        got = float(result.get("counters", {}).get(name, 0))
        rel = abs(got - base_value) / base_value
        if rel > tolerance:
            violations.append(
                f"counter {name}: {got:g} vs baseline {base_value:g} "
                f"({rel:+.1%} > ±{tolerance:.0%})")
    return violations


def baseline_payload(result: dict) -> dict:
    """The committed-baseline form of a storm result.

    Deliberately excludes verdict digests (BLAS-build dependent) and
    wall-clock trace (machine dependent) — only the speedup ratio and
    the deterministic counters are portable.
    """
    return {
        "floor": STORM_SPEEDUP_FLOOR,
        "speedup": result["speedup"],
        "counters": result["counters"],
        "meta": result["meta"],
    }


def format_storm_report(result: dict) -> str:
    """Human-readable summary of one storm run."""
    meta = result["meta"]
    serial = result["serial"]
    concurrent = result["concurrent"]
    lines = [
        f"ingest storm: {meta['streams']} streams x "
        f"{meta['num_arrivals']} arrivals over a "
        f"{meta['inventory_size']:,}-sample inventory "
        f"({meta['shard_count']} shards), "
        f"{meta['workers']} workers, queue capacity "
        f"{meta['queue_capacity']}", "",
        f"{'arm':<12} {'seconds':>9} {'datasets/s':>11} "
        f"{'samples/s':>11} {'depth':>6} {'inflight':>9}",
    ]
    lines.append("-" * len(lines[-1]))
    for arm_name, arm in (("serial", serial), ("concurrent", concurrent)):
        lines.append(
            f"{arm_name:<12} {arm['seconds']:>9.2f} "
            f"{arm['datasets_per_second']:>11.3f} "
            f"{arm['samples_per_second']:>11.1f} "
            f"{arm['max_queue_depth']:>6d} {arm['max_inflight']:>9d}")
    lines.append("")
    lines.append(
        f"speedup {result['speedup']:.2f}x datasets/s "
        f"(floor {STORM_SPEEDUP_FLOOR:.1f}x)  "
        f"verdicts identical: {result['verdicts_identical']}")
    lines.append(
        f"quarantined {concurrent['quarantined']}  "
        f"degraded {concurrent['degraded']}  "
        f"fetch model rtt={meta['rtt_seconds']}s + "
        f"{meta['per_sample_seconds']}s/sample")
    return "\n".join(lines)
