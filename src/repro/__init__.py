"""ENLD — Efficient Noisy Label Detection for Incremental Datasets in a
Data Lake (ICDE 2023), reproduced end-to-end in pure Python/numpy.

Top-level convenience re-exports cover the public entry points; see the
subpackages for the full API:

- :mod:`repro.core`      — the ENLD framework (the paper's contribution);
- :mod:`repro.nn`        — from-scratch autograd NN substrate;
- :mod:`repro.datasets`  — synthetic benchmark datasets and splits;
- :mod:`repro.noise`     — label-noise models and injection;
- :mod:`repro.index`     — KD-tree nearest-neighbour indexes;
- :mod:`repro.datalake`  — platform catalog and arrival simulation;
- :mod:`repro.baselines` — Default / Confident Learning / Topofilter;
- :mod:`repro.eval`      — detection metrics, timing, runners;
- :mod:`repro.obs`       — pipeline tracing, counters, trace export;
- :mod:`repro.experiments` — per-figure/table experiment drivers.
"""

from .core import ENLD, DetectionResult, ENLDConfig
from .datalake import ArrivalStream, DataLakeCatalog
from .nn.data import LabeledDataset
from .obs import Tracer, use_tracer

__version__ = "1.0.0"

__all__ = [
    "ENLD", "ENLDConfig", "DetectionResult",
    "LabeledDataset", "ArrivalStream", "DataLakeCatalog",
    "Tracer", "use_tracer",
    "__version__",
]
