"""``repro.index`` — nearest-neighbour index structures."""

from .balltree import BallTree
from .classindex import BACKENDS, ClassFeatureIndex, build_index
from .kdtree import KDTree, brute_force_knn

__all__ = ["KDTree", "BallTree", "brute_force_knn",
           "ClassFeatureIndex", "build_index", "BACKENDS"]
