"""``repro.index`` — nearest-neighbour index structures.

New callers should go through :mod:`repro.index.facade`
(:func:`build_backend` with ``backend="auto"``) or
:class:`ClassFeatureIndex` rather than constructing a concrete tree —
the facade picks the fastest exact backend for the data shape and keeps
results bit-identical across backends.
"""

from .balltree import BallTree
from .classindex import BACKENDS, ClassFeatureIndex, build_index
from .facade import (AUTO, BruteIndex, build_backend, resolve_backend,
                     select_backend)
from .kdtree import KDTree, brute_force_knn

__all__ = ["KDTree", "BallTree", "BruteIndex", "brute_force_knn",
           "ClassFeatureIndex", "build_index", "BACKENDS", "AUTO",
           "build_backend", "resolve_backend", "select_backend"]
