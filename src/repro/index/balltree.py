"""Ball tree for k-nearest-neighbour queries in high dimensions.

KD-trees partition by axis-aligned splits, which lose pruning power as
dimensionality grows; the penultimate-layer features ENLD indexes are
64–96-dimensional, where metric trees prune better.  This ball tree
partitions points into nested hyperspheres and prunes with the triangle
inequality, exposing the same ``query`` interface as
:class:`repro.index.kdtree.KDTree` so the two are interchangeable in
:class:`repro.index.classindex.ClassFeatureIndex`.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

_LEAF_SIZE = 16


class BallTree:
    """Static ball tree over a set of points (Euclidean metric).

    Parameters
    ----------
    points:
        Array of shape ``(N, D)``.  A reference is kept; do not mutate.
    leaf_size:
        Maximum number of points stored in a leaf.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, D), got {points.shape}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self.points = points
        self.leaf_size = leaf_size
        self._n, self._d = points.shape
        self._order = np.arange(self._n)
        # Node storage.
        self._center: List[np.ndarray] = []
        self._radius: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._leaf_start: List[int] = []
        self._leaf_stop: List[int] = []
        self._root = self._build(0, self._n) if self._n else -1

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def _new_node(self, center: np.ndarray, radius: float) -> int:
        self._center.append(center)
        self._radius.append(radius)
        self._left.append(-1)
        self._right.append(-1)
        self._leaf_start.append(-1)
        self._leaf_stop.append(-1)
        return len(self._center) - 1

    def _build(self, start: int, stop: int) -> int:
        idx = self._order[start:stop]
        subset = self.points[idx]
        center = subset.mean(axis=0)
        dists = np.linalg.norm(subset - center, axis=1)
        radius = float(dists.max()) if len(dists) else 0.0
        node = self._new_node(center, radius)
        count = stop - start
        if count <= self.leaf_size or radius == 0.0:
            self._leaf_start[node] = start
            self._leaf_stop[node] = stop
            return node
        # Split along the direction of maximal extent: pick the point
        # farthest from the centroid as pole A, the point farthest from
        # A as pole B, and partition by nearest pole.
        pole_a = subset[int(np.argmax(dists))]
        d_to_a = np.linalg.norm(subset - pole_a, axis=1)
        pole_b = subset[int(np.argmax(d_to_a))]
        d_to_b = np.linalg.norm(subset - pole_b, axis=1)
        to_a = d_to_a <= d_to_b
        # Guard against degenerate splits (all points on one side).
        if to_a.all() or (~to_a).all():
            half = count // 2
            to_a = np.zeros(count, dtype=bool)
            to_a[:half] = True
        left_idx = idx[to_a]
        right_idx = idx[~to_a]
        self._order[start:start + len(left_idx)] = left_idx
        self._order[start + len(left_idx):stop] = right_idx
        mid = start + len(left_idx)
        self._left[node] = self._build(start, mid)
        self._right[node] = self._build(mid, stop)
        return node

    # ------------------------------------------------------------------
    def query(self, point: np.ndarray, k: int = 1
              ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbours of ``point``.

        Returns ``(distances, indices)`` sorted by ascending distance.
        """
        point = np.asarray(point, dtype=np.float64).ravel()
        if point.shape[0] != self._d:
            raise ValueError(
                f"query dim {point.shape[0]} != tree dim {self._d}")
        if k < 1:
            raise ValueError("k must be positive")
        if self._n == 0:
            return np.empty(0), np.empty(0, dtype=int)
        k = min(k, self._n)
        heap: List[Tuple[float, int]] = []  # max-heap of (-dist, index)
        # Best-first search ordered by lower-bound distance to each ball.
        root_bound = max(
            0.0, float(np.linalg.norm(point - self._center[self._root]))
            - self._radius[self._root])
        candidates: List[Tuple[float, int]] = [(root_bound, self._root)]
        while candidates:
            bound, node = heapq.heappop(candidates)
            if len(heap) == k and bound >= -heap[0][0]:
                break  # no ball can improve on the current kth best
            if self._leaf_start[node] >= 0:
                idx = self._order[self._leaf_start[node]:
                                  self._leaf_stop[node]]
                # Same square-sum form as the kd-tree leaves and the
                # brute refinement pass (norm's pairwise reduction
                # rounds differently), keeping returned distances
                # bit-identical across backends.
                diffs = self.points[idx] - point
                dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
                for dist, i in zip(dists, idx):
                    if len(heap) < k:
                        heapq.heappush(heap, (-dist, int(i)))
                    elif dist < -heap[0][0]:
                        heapq.heapreplace(heap, (-dist, int(i)))
                continue
            for child in (self._left[node], self._right[node]):
                child_bound = max(
                    0.0, float(np.linalg.norm(point - self._center[child]))
                    - self._radius[child])
                heapq.heappush(candidates, (child_bound, child))
        items = sorted((-d, i) for d, i in heap)
        return (np.array([d for d, _ in items]),
                np.array([i for _, i in items], dtype=int))

    def query_batch(self, points: np.ndarray, k: int = 1
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised multi-query; returns ``(dists, idx)`` of shape (Q, k')."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("query_batch expects (Q, D)")
        kk = min(k, max(self._n, 1))
        dists = np.empty((len(points), kk))
        idx = np.empty((len(points), kk), dtype=int)
        for row, p in enumerate(points):
            dists[row], idx[row] = self.query(p, k=k)
        return dists, idx
