"""Per-class feature indexes for contrastive sampling.

``ClassFeatureIndex`` maintains one nearest-neighbour structure per
observed label over the feature representations of the high-quality
inventory samples — exactly the structure the paper's §IV-D
implementation note prescribes for efficient repeated
``k_nearest(M̂(x, θ), H_j, k)`` queries.

Four backend selections are supported:

- ``"auto"`` (default for new callers) — per class, the facade picks
  the fastest exact backend from the candidate-set size and
  dimensionality (:func:`repro.index.facade.select_backend`);
- ``"kdtree"`` (the paper's structure);
- ``"balltree"`` — metric tree that prunes better in high dimensions;
- ``"brute"``  — exact batched-BLAS linear scan.

All backends return identical neighbour sets, so detection verdicts
never depend on the choice.  The index also supports *incremental
maintenance*: :meth:`ClassFeatureIndex.add` appends new samples and
patches only the affected per-class structures, and
:meth:`ClassFeatureIndex.merge` folds one index into another — so
``S_c`` growth and model refreshes do not pay a full rebuild.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..obs import incr, trace_span
from .facade import (AUTO, CONCRETE_BACKENDS, Backend, BruteIndex,
                     build_backend, supports_extend)

BACKENDS = CONCRETE_BACKENDS


class ClassFeatureIndex:
    """Per-class nearest-neighbour structures over sample features.

    Parameters
    ----------
    features:
        Array of shape ``(N, D)``: the representation ``M̂(x, θ)`` of
        each candidate sample.
    labels:
        Observed labels of the candidates, shape ``(N,)``.
    use_kdtree:
        Legacy switch: ``False`` selects the brute-force backend
        (overridden by an explicit ``backend``).
    backend:
        One of :data:`BACKENDS` or ``"auto"``.
    source_indices:
        Caller-level positions aligned with ``features``; query results
        are reported in this coordinate system.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray,
                 use_kdtree: bool = True, leaf_size: int = 16,
                 source_indices: Optional[np.ndarray] = None,
                 backend: Optional[str] = None):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError(f"features must be (N, D), got {features.shape}")
        if labels.shape != (len(features),):
            raise ValueError("labels must align with features")
        if backend is None:
            backend = "kdtree" if use_kdtree else "brute"
        if backend != AUTO and backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: "
                f"{BACKENDS + (AUTO,)}")
        self.features = features
        self.labels = labels
        self.backend = backend
        self.leaf_size = leaf_size
        self.use_kdtree = backend == "kdtree"
        if source_indices is None:
            self.source_indices = np.arange(len(features))
        else:
            self.source_indices = np.asarray(source_indices, dtype=int)
            if self.source_indices.shape != (len(features),):
                raise ValueError("source_indices must align with features")
        self._positions: Dict[int, np.ndarray] = {}
        self._trees: Dict[int, Backend] = {}
        with trace_span("index_build"):
            for cls in np.unique(labels):
                pos = np.nonzero(labels == cls)[0]
                self._positions[int(cls)] = pos
                self._build_class(int(cls))
        incr("classindex.builds")
        incr("classindex.samples_indexed", len(features))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_class(self, cls: int) -> None:
        """(Re)build the structure of one class from its positions."""
        pos = self._positions[cls]
        self._trees[cls] = build_backend(self.features[pos],
                                         backend=self.backend,
                                         leaf_size=self.leaf_size)

    def backend_for(self, cls: int) -> Optional[str]:
        """Resolved concrete backend name for ``cls`` (None if absent)."""
        tree = self._trees.get(int(cls))
        if tree is None:
            return None
        if isinstance(tree, BruteIndex):
            return "brute"
        return type(tree).__name__.lower()

    @property
    def classes(self) -> List[int]:
        """Classes with at least one indexed sample."""
        return sorted(self._positions)

    def class_size(self, cls: int) -> int:
        """Number of indexed samples of class ``cls``."""
        return len(self._positions.get(int(cls), ()))

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add(self, features: np.ndarray, labels: np.ndarray,
            source_indices: Optional[np.ndarray] = None) -> None:
        """Append samples, patching only the classes they belong to.

        Classes backed by :class:`BruteIndex` extend in place (O(new));
        tree-backed classes rebuild their own structure only — classes
        untouched by the batch keep their structure as-is.  Equivalent
        to a fresh build over the concatenated data (pinned by
        ``tests/test_incremental_index.py``).
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2 or features.shape[1] != self.features.shape[1]:
            raise ValueError(
                f"features must be (M, {self.features.shape[1]}), "
                f"got {features.shape}")
        if labels.shape != (len(features),):
            raise ValueError("labels must align with features")
        if source_indices is None:
            base = int(self.source_indices.max()) + 1 \
                if len(self.source_indices) else 0
            source_indices = np.arange(base, base + len(features))
        else:
            source_indices = np.asarray(source_indices, dtype=int)
            if source_indices.shape != (len(features),):
                raise ValueError("source_indices must align with features")
        if len(features) == 0:
            return
        offset = len(self.features)
        self.features = np.concatenate([self.features, features])
        self.labels = np.concatenate([self.labels, labels])
        self.source_indices = np.concatenate(
            [self.source_indices, source_indices])
        with trace_span("index_add"):
            for cls in np.unique(labels):
                cls = int(cls)
                new_pos = offset + np.nonzero(labels == cls)[0]
                old_pos = self._positions.get(cls)
                if old_pos is None:
                    self._positions[cls] = new_pos
                    self._build_class(cls)
                    incr("classindex.incremental_class_builds")
                    continue
                self._positions[cls] = np.concatenate([old_pos, new_pos])
                tree = self._trees[cls]
                if supports_extend(tree):
                    tree.extend(self.features[new_pos])
                    incr("classindex.incremental_extends")
                else:
                    self._build_class(cls)
                    incr("classindex.incremental_class_builds")
        incr("classindex.incremental_adds")
        incr("classindex.samples_indexed", len(features))

    def merge(self, other: "ClassFeatureIndex") -> None:
        """Fold ``other``'s samples into this index (incremental).

        ``other``'s source indices are preserved, so both indexes must
        share a coordinate system (e.g. positions in the same ``I_c``).
        """
        if len(other.features) and len(self.features) \
                and other.features.shape[1] != self.features.shape[1]:
            raise ValueError("cannot merge indexes of different dims")
        incr("classindex.merges")
        self.add(other.features, other.labels,
                 source_indices=other.source_indices)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, feature: np.ndarray, cls: int, k: int
              ) -> Tuple[np.ndarray, np.ndarray]:
        """``k`` nearest candidates of class ``cls`` to ``feature``.

        Returns ``(distances, source_positions)`` where positions refer
        to the caller's coordinate system (``source_indices`` passed at
        construction, defaulting to row numbers).  Empty arrays when the
        class has no candidates.
        """
        cls = int(cls)
        incr("classindex.queries")
        pos = self._positions.get(cls)
        if pos is None or len(pos) == 0:
            return np.empty(0), np.empty(0, dtype=int)
        dists, local = self._trees[cls].query(feature, k=k)
        return dists, self.source_indices[pos[local]]

    def query_batch(self, features: np.ndarray, classes: np.ndarray, k: int
                    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-row ``k``-NN against a per-row target class, batched.

        Queries are grouped by class so each class answers all of its
        queries in one backend call (a single BLAS matmul under the
        brute backend).  Returns one ``(distances, source_positions)``
        pair per input row, in input order — rows whose class has no
        candidates get empty arrays, exactly like :meth:`query`.
        """
        features = np.asarray(features, dtype=np.float64)
        classes = np.asarray(classes)
        if features.ndim != 2:
            raise ValueError("query_batch expects (Q, D) features")
        if classes.shape != (len(features),):
            raise ValueError("classes must align with features")
        incr("classindex.queries", len(features))
        incr("classindex.batch_queries")
        empty = (np.empty(0), np.empty(0, dtype=int))
        out: List[Tuple[np.ndarray, np.ndarray]] = [empty] * len(features)
        for cls in np.unique(classes):
            rows = np.nonzero(classes == cls)[0]
            pos = self._positions.get(int(cls))
            if pos is None or len(pos) == 0:
                continue
            dists, local = self._trees[int(cls)].query_batch(
                features[rows], k=k)
            source = self.source_indices[pos[local]]
            for j, row in enumerate(rows):
                out[row] = (dists[j], source[j])
        return out

    def total_indexed(self) -> int:
        """Total number of indexed samples across classes."""
        return sum(len(p) for p in self._positions.values())


def build_index(features: np.ndarray, labels: np.ndarray,
                restrict_to: Optional[Iterable[int]] = None,
                use_kdtree: bool = True,
                backend: Optional[str] = None) -> ClassFeatureIndex:
    """Build a :class:`ClassFeatureIndex`, optionally restricted to a
    label subset (the paper's ``H'`` restricted to ``label(D)``)."""
    features = np.asarray(features)
    labels = np.asarray(labels)
    source = np.arange(len(labels))
    if restrict_to is not None:
        allowed = np.isin(labels, np.fromiter(restrict_to, dtype=labels.dtype))
        features = features[allowed]
        labels = labels[allowed]
        source = source[allowed]
    return ClassFeatureIndex(features, labels, use_kdtree=use_kdtree,
                             backend=backend, source_indices=source)
