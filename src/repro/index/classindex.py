"""Per-class feature indexes for contrastive sampling.

``ClassFeatureIndex`` maintains one nearest-neighbour tree per observed
label over the feature representations of the high-quality inventory
samples — exactly the structure the paper's §IV-D implementation note
prescribes for efficient repeated ``k_nearest(M̂(x, θ), H_j, k)``
queries.

Three backends are supported:

- ``"kdtree"`` (default, the paper's structure);
- ``"balltree"`` — metric tree that prunes better in high dimensions;
- ``"brute"``  — exact linear scan (the ablation baseline).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..obs import incr, trace_span
from .balltree import BallTree
from .kdtree import KDTree, brute_force_knn

BACKENDS = ("kdtree", "balltree", "brute")


class ClassFeatureIndex:
    """Per-class nearest-neighbour trees over sample features.

    Parameters
    ----------
    features:
        Array of shape ``(N, D)``: the representation ``M̂(x, θ)`` of
        each candidate sample.
    labels:
        Observed labels of the candidates, shape ``(N,)``.
    use_kdtree:
        Legacy switch: ``False`` selects the brute-force backend
        (overridden by an explicit ``backend``).
    backend:
        One of :data:`BACKENDS`.
    source_indices:
        Caller-level positions aligned with ``features``; query results
        are reported in this coordinate system.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray,
                 use_kdtree: bool = True, leaf_size: int = 16,
                 source_indices: Optional[np.ndarray] = None,
                 backend: Optional[str] = None):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError(f"features must be (N, D), got {features.shape}")
        if labels.shape != (len(features),):
            raise ValueError("labels must align with features")
        if backend is None:
            backend = "kdtree" if use_kdtree else "brute"
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {BACKENDS}")
        self.features = features
        self.labels = labels
        self.backend = backend
        self.use_kdtree = backend == "kdtree"
        if source_indices is None:
            self.source_indices = np.arange(len(features))
        else:
            self.source_indices = np.asarray(source_indices, dtype=int)
            if self.source_indices.shape != (len(features),):
                raise ValueError("source_indices must align with features")
        self._positions: Dict[int, np.ndarray] = {}
        self._trees: Dict[int, object] = {}
        with trace_span("index_build"):
            for cls in np.unique(labels):
                pos = np.nonzero(labels == cls)[0]
                self._positions[int(cls)] = pos
                if backend == "kdtree":
                    self._trees[int(cls)] = KDTree(features[pos],
                                                   leaf_size=leaf_size)
                elif backend == "balltree":
                    self._trees[int(cls)] = BallTree(features[pos],
                                                     leaf_size=leaf_size)
        incr("classindex.builds")
        incr("classindex.samples_indexed", len(features))

    @property
    def classes(self) -> List[int]:
        """Classes with at least one indexed sample."""
        return sorted(self._positions)

    def class_size(self, cls: int) -> int:
        """Number of indexed samples of class ``cls``."""
        return len(self._positions.get(int(cls), ()))

    def query(self, feature: np.ndarray, cls: int, k: int
              ) -> Tuple[np.ndarray, np.ndarray]:
        """``k`` nearest candidates of class ``cls`` to ``feature``.

        Returns ``(distances, source_positions)`` where positions refer
        to the caller's coordinate system (``source_indices`` passed at
        construction, defaulting to row numbers).  Empty arrays when the
        class has no candidates.
        """
        cls = int(cls)
        incr("classindex.queries")
        pos = self._positions.get(cls)
        if pos is None or len(pos) == 0:
            return np.empty(0), np.empty(0, dtype=int)
        if self.backend == "brute":
            dists, local = brute_force_knn(self.features[pos], feature, k)
        else:
            dists, local = self._trees[cls].query(feature, k=k)
        return dists, self.source_indices[pos[local]]

    def total_indexed(self) -> int:
        """Total number of indexed samples across classes."""
        return sum(len(p) for p in self._positions.values())


def build_index(features: np.ndarray, labels: np.ndarray,
                restrict_to: Optional[Iterable[int]] = None,
                use_kdtree: bool = True,
                backend: Optional[str] = None) -> ClassFeatureIndex:
    """Build a :class:`ClassFeatureIndex`, optionally restricted to a
    label subset (the paper's ``H'`` restricted to ``label(D)``)."""
    features = np.asarray(features)
    labels = np.asarray(labels)
    source = np.arange(len(labels))
    if restrict_to is not None:
        allowed = np.isin(labels, np.fromiter(restrict_to, dtype=labels.dtype))
        features = features[allowed]
        labels = labels[allowed]
        source = source[allowed]
    return ClassFeatureIndex(features, labels, use_kdtree=use_kdtree,
                             backend=backend, source_indices=source)
