"""Auto-selecting nearest-neighbour backend facade.

The paper's §IV-D builds KD-trees so repeated ``k_nearest`` queries
cost ``O(k |A| log |H'|)`` instead of the naive ``O(c |A| |H'|)`` — but
that asymptotic story inverts on real hardware at ENLD's working point.
The penultimate-layer features being indexed are 64–96-dimensional,
where axis-aligned splits stop pruning ("curse of dimensionality") and
a pure-Python tree walk pays interpreter overhead per node, while a
single BLAS matmul ``X @ H_c.T`` answers *every* query against a class
at once at hundreds of GFLOP/s.

This module therefore exposes three things:

- :class:`BruteIndex` — an exact batched brute-force backend built on
  the ``|x - h|² = |x|² + |h|² - 2·x·h`` expansion, with a
  direct-difference refinement pass so returned distances are
  bit-identical to :func:`repro.index.kdtree.brute_force_knn`;
- :func:`select_backend` — the dimensionality/size heuristic picking
  between ``kdtree``, ``balltree`` and ``brute`` (see DESIGN.md §11);
- :func:`build_backend` — the factory used by
  :class:`repro.index.classindex.ClassFeatureIndex` and any caller that
  previously constructed a tree directly.

All backends return *identical neighbour sets* for a given query (ties
broken by ascending index in :class:`BruteIndex`; exact Euclidean
everywhere), so detection verdicts do not depend on the choice — only
wall-clock does.  The parity suite in ``tests/test_facade.py`` pins
this.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from ..obs import incr
from .balltree import BallTree
from .kdtree import KDTree

#: Concrete backend names (the historical public constant lives in
#: :mod:`repro.index.classindex`; keep the facade self-contained).
CONCRETE_BACKENDS = ("kdtree", "balltree", "brute")

#: Sentinel accepted everywhere a backend name is: pick per class.
AUTO = "auto"

#: Below this many points a tree build costs more than it saves —
#: one matmul beats walking any structure.
SMALL_N_THRESHOLD = 512

#: At or above this dimensionality axis-aligned KD splits prune so
#: little that the Python walk loses to BLAS regardless of N.
HIGH_DIM_THRESHOLD = 24

#: Between the KD sweet spot and the brute regime, metric balls still
#: prune usefully; below it KD-trees win on cheaper node tests.
KDTREE_MAX_DIM = 12

#: Extra neighbours pulled before the exact-distance refinement pass,
#: absorbing float round-off at the k-th-place boundary.
_REFINE_PAD = 8

Backend = Union[KDTree, BallTree, "BruteIndex"]


class BruteIndex:
    """Exact k-NN by batched BLAS distance evaluation.

    Parameters
    ----------
    points:
        Array of shape ``(N, D)``.  Copied into a contiguous float64
        buffer so :meth:`extend` can grow it.

    The squared distances used for *selection* come from the matmul
    expansion; the distances *returned* (and the final ordering) are
    recomputed from direct differences over the top ``k + pad``
    candidates, making results bit-identical to
    :func:`repro.index.kdtree.brute_force_knn` and therefore to the
    tree backends.  Ties are broken by ascending point index.
    """

    def __init__(self, points: np.ndarray):
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, D), got {points.shape}")
        self.points = points
        self._sq_norms = np.einsum("nd,nd->n", points, points)
        incr("brute.builds")
        incr("brute.points_indexed", len(points))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def _d(self) -> int:
        return self.points.shape[1]

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def extend(self, new_points: np.ndarray) -> None:
        """Append rows; O(new) — no rebuild of existing state."""
        new_points = np.ascontiguousarray(new_points, dtype=np.float64)
        if new_points.ndim != 2 or new_points.shape[1] != self._d:
            raise ValueError(
                f"extend expects (M, {self._d}), got {new_points.shape}")
        self.points = np.concatenate([self.points, new_points])
        self._sq_norms = np.concatenate([
            self._sq_norms,
            np.einsum("nd,nd->n", new_points, new_points)])
        incr("brute.points_indexed", len(new_points))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, point: np.ndarray, k: int = 1
              ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbours of one point.

        Returns ``(distances, indices)`` sorted by ascending
        ``(distance, index)``; all points when fewer than ``k`` exist.
        """
        point = np.asarray(point, dtype=np.float64).ravel()
        if point.shape[0] != self._d:
            raise ValueError(
                f"query dim {point.shape[0]} != index dim {self._d}")
        if k < 1:
            raise ValueError("k must be positive")
        incr("brute.queries")
        if len(self.points) == 0:
            return np.empty(0), np.empty(0, dtype=int)
        dists, idx = self.query_batch(point[None, :], k=k)
        return dists[0], idx[0]

    def query_batch(self, points: np.ndarray, k: int = 1
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """All ``k``-NN of a query batch via one matmul.

        Returns ``(dists, idx)`` of shape ``(Q, k')`` with
        ``k' = min(k, len(index))`` — ``(Q, 0)`` for an empty index,
        matching the tree backends' :meth:`query_batch` contract.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("query_batch expects (Q, D)")
        if k < 1:
            raise ValueError("k must be positive")
        incr("brute.batch_queries")
        incr("brute.queries_batched", len(points))
        n = len(self.points)
        kk = min(k, n)
        if n == 0 or len(points) == 0:
            return (np.empty((len(points), kk)),
                    np.empty((len(points), kk), dtype=int))
        # Selection pass: |x-h|² = |x|² + |h|² - 2 x·h, one BLAS gemm.
        gram = points @ self.points.T
        q_norms = np.einsum("qd,qd->q", points, points)
        approx = q_norms[:, None] + self._sq_norms[None, :] - 2.0 * gram
        take = min(kk + _REFINE_PAD, n)
        if take < n:
            cand = np.argpartition(approx, take - 1, axis=1)[:, :take]
        else:
            cand = np.broadcast_to(np.arange(n), (len(points), n)).copy()
        # Refinement pass: exact direct-difference distances over the
        # candidates, ordered by (distance, index).  This removes the
        # expansion's round-off from both the returned values and the
        # k-th-place cut, keeping every backend bit-identical.
        diffs = self.points[cand] - points[:, None, :]
        exact = np.einsum("qmd,qmd->qm", diffs, diffs)
        order = np.lexsort((cand, exact))[:, :kk]
        idx = np.take_along_axis(cand, order, axis=1)
        d2 = np.take_along_axis(exact, order, axis=1)
        return np.sqrt(d2), idx


def select_backend(n_points: int, dim: int) -> str:
    """Pick the fastest exact backend for a class of ``n_points``
    ``dim``-dimensional features.

    The heuristic (measured in ``benchmarks``, rationale in DESIGN.md
    §11): brute-force BLAS wins for small candidate sets (tree build
    cost dominates) and for high dimensions (no pruning survives);
    KD-trees win for large low-dimensional sets; ball trees cover the
    mid-dimensional band in between.
    """
    if n_points <= SMALL_N_THRESHOLD or dim >= HIGH_DIM_THRESHOLD:
        return "brute"
    if dim <= KDTREE_MAX_DIM:
        return "kdtree"
    return "balltree"


def resolve_backend(backend: str, n_points: int, dim: int) -> str:
    """Map ``"auto"`` to a concrete backend name; validate others."""
    if backend == AUTO:
        chosen = select_backend(n_points, dim)
    else:
        chosen = backend
    if chosen not in CONCRETE_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"available: {CONCRETE_BACKENDS + (AUTO,)}")
    return chosen


def build_backend(points: np.ndarray, backend: str = AUTO,
                  leaf_size: int = 16) -> Backend:
    """Construct a query structure over ``points``.

    ``backend`` may be a concrete name or ``"auto"``, in which case
    :func:`select_backend` decides from the data shape.  Every returned
    object exposes ``query(point, k)``, ``query_batch(points, k)`` and
    ``__len__``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, D), got {points.shape}")
    chosen = resolve_backend(backend, len(points), points.shape[1])
    incr(f"facade.selected.{chosen}")
    if chosen == "kdtree":
        return KDTree(points, leaf_size=leaf_size)
    if chosen == "balltree":
        return BallTree(points, leaf_size=leaf_size)
    return BruteIndex(points)


def supports_extend(backend: Backend) -> bool:
    """True when the backend grows in place (no rebuild on append)."""
    return isinstance(backend, BruteIndex)


__all__: List[str] = [
    "AUTO", "Backend", "BruteIndex", "CONCRETE_BACKENDS",
    "build_backend", "resolve_backend", "select_backend",
    "supports_extend",
]
