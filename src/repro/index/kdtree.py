"""A from-scratch KD-tree for k-nearest-neighbour queries.

The paper's implementation note (§IV-D) builds KD-trees over the
high-quality inventory samples' feature representations so that the
repeated k-nearest queries of contrastive sampling cost
``O(k |A| log |H'|)`` instead of the brute-force ``O(c |A| |H'|)``.

This implementation uses median splits on the axis of largest spread,
array-based node storage, and leaf buckets.  Queries return exact
nearest neighbours in Euclidean distance; correctness is property-
tested against brute force in the test suite.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..obs import incr

_LEAF_SIZE = 16


class KDTree:
    """Static KD-tree over a set of points.

    Parameters
    ----------
    points:
        Array of shape ``(N, D)``.  A reference is kept; do not mutate.
    leaf_size:
        Maximum number of points stored in a leaf bucket.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, D), got {points.shape}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self.points = points
        self.leaf_size = leaf_size
        self._n, self._d = points.shape
        # Node arrays: axis/threshold for internal nodes, slices for leaves.
        self._axis: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._leaf_start: List[int] = []
        self._leaf_stop: List[int] = []
        self._order = np.arange(self._n)
        if self._n:
            self._root = self._build(0, self._n)
        else:
            self._root = -1
        incr("kdtree.builds")
        incr("kdtree.points_indexed", self._n)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_node(self) -> int:
        self._axis.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._leaf_start.append(-1)
        self._leaf_stop.append(-1)
        return len(self._axis) - 1

    def _build(self, start: int, stop: int) -> int:
        node = self._new_node()
        count = stop - start
        if count <= self.leaf_size:
            self._leaf_start[node] = start
            self._leaf_stop[node] = stop
            return node
        idx = self._order[start:stop]
        subset = self.points[idx]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] == 0.0:
            # All points identical along every axis: make a leaf.
            self._leaf_start[node] = start
            self._leaf_stop[node] = stop
            return node
        mid = count // 2
        part = np.argpartition(subset[:, axis], mid)
        self._order[start:stop] = idx[part]
        threshold = float(self.points[self._order[start + mid], axis])
        self._axis[node] = axis
        self._threshold[node] = threshold
        self._left[node] = self._build(start, start + mid)
        self._right[node] = self._build(start + mid, stop)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, point: np.ndarray, k: int = 1
              ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbours of ``point``.

        Returns ``(distances, indices)`` sorted by ascending distance.
        When fewer than ``k`` points exist, all points are returned.
        """
        point = np.asarray(point, dtype=np.float64).ravel()
        if point.shape[0] != self._d:
            raise ValueError(
                f"query dim {point.shape[0]} != tree dim {self._d}")
        if k < 1:
            raise ValueError("k must be positive")
        incr("kdtree.queries")
        if self._n == 0:
            return np.empty(0), np.empty(0, dtype=int)
        k = min(k, self._n)
        # Max-heap of (-dist2, index) keeping the best k seen so far.
        heap: List[Tuple[float, int]] = []
        self._search(self._root, point, k, heap)
        items = sorted(((-d2, i) for d2, i in heap))
        dists = np.sqrt(np.array([d2 for d2, _ in items]))
        idx = np.array([i for _, i in items], dtype=int)
        return dists, idx

    def _search(self, node: int, point: np.ndarray, k: int,
                heap: List[Tuple[float, int]]) -> None:
        stack = [node]
        while stack:
            node = stack.pop()
            if node < 0:
                continue
            axis = self._axis[node]
            if axis < 0:  # leaf
                start, stop = self._leaf_start[node], self._leaf_stop[node]
                idx = self._order[start:stop]
                diffs = self.points[idx] - point
                d2 = np.einsum("nd,nd->n", diffs, diffs)
                for dist2, i in zip(d2, idx):
                    if len(heap) < k:
                        heapq.heappush(heap, (-dist2, int(i)))
                    elif dist2 < -heap[0][0]:
                        heapq.heapreplace(heap, (-dist2, int(i)))
                continue
            threshold = self._threshold[node]
            delta = point[axis] - threshold
            near, far = ((self._left[node], self._right[node]) if delta < 0
                         else (self._right[node], self._left[node]))
            # Visit the far side only if the splitting plane is closer
            # than the current kth-best distance (or heap not full).
            if len(heap) < k or delta * delta < -heap[0][0]:
                stack.append(far)
            stack.append(near)

    def query_batch(self, points: np.ndarray, k: int = 1
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vector of queries; returns ``(dists, idx)`` of shape (Q, k').

        ``k'`` is ``min(k, len(tree))`` — in particular ``(Q, 0)``
        outputs for an empty tree, matching :meth:`query`'s length-0
        results.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("query_batch expects (Q, D)")
        kk = min(k, self._n)
        dists = np.empty((len(points), kk))
        idx = np.empty((len(points), kk), dtype=int)
        for row, p in enumerate(points):
            d, i = self.query(p, k=k)
            dists[row], idx[row] = d, i
        return dists, idx

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``point``."""
        point = np.asarray(point, dtype=np.float64).ravel()
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[int] = []
        r2 = radius * radius
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node < 0:
                continue
            axis = self._axis[node]
            if axis < 0:
                start, stop = self._leaf_start[node], self._leaf_stop[node]
                idx = self._order[start:stop]
                diffs = self.points[idx] - point
                d2 = np.einsum("nd,nd->n", diffs, diffs)
                out.extend(int(i) for i, ok in zip(idx, d2 <= r2) if ok)
                continue
            delta = point[axis] - self._threshold[node]
            near, far = ((self._left[node], self._right[node]) if delta < 0
                         else (self._right[node], self._left[node]))
            stack.append(near)
            if delta * delta <= r2:
                stack.append(far)
        return np.array(sorted(out), dtype=int)


def brute_force_knn(points: np.ndarray, query: np.ndarray, k: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Reference O(N·D) k-NN used for validation and the ablation bench."""
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64).ravel()
    diffs = points - query
    d2 = np.einsum("nd,nd->n", diffs, diffs)
    k = min(k, len(points))
    idx = np.argpartition(d2, k - 1)[:k]
    idx = idx[np.argsort(d2[idx], kind="stable")]
    return np.sqrt(d2[idx]), idx
