#!/usr/bin/env python3
"""Bring your own architecture (paper §V-G).

ENLD is model-agnostic: anything exposing softmax confidences
``M(x, θ)`` and a penultimate representation ``M̂(x, θ)`` works.  This
example registers a custom classifier in the model zoo and runs the
full detection pipeline with it — the same mechanism behind the
paper's DenseNet-121 / ResNet-164 experiments (Fig. 6).

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import ArrivalStream, ENLD, ENLDConfig
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.eval import score_detection
from repro.nn import (Classifier, LayerNorm, Linear, Sequential, Tanh,
                      resolve_rng)
from repro.nn.models import register_model
from repro.nn.tensor import Tensor
from repro.noise import corrupt_labels, pair_asymmetric


class GatedMLP(Classifier):
    """A custom backbone: two tanh-gated hidden layers + layer norm."""

    def __init__(self, in_features: int, num_classes: int,
                 hidden: int = 64, rng=None):
        rng = resolve_rng(rng)
        super().__init__(hidden, num_classes, rng=rng)
        self.trunk = Sequential(
            Linear(in_features, hidden, rng=rng), Tanh(),
            LayerNorm(hidden),
            Linear(hidden, hidden, rng=rng), Tanh(),
        )
        self.gate = Linear(in_features, hidden, rng=rng)

    def forward_features(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.trunk(x) * self.gate(x).sigmoid()


# One line makes the model available everywhere by name.
register_model("gated_mlp")(
    lambda in_features, num_classes, rng=None, **kw:
    GatedMLP(in_features, num_classes, rng=rng, **kw))


def main() -> None:
    rng = np.random.default_rng(30)
    data = generate(toy(num_classes=6, samples_per_class=80), seed=31)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, noise_rate=0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                             transition=transition, seed=32).arrivals()

    config = ENLDConfig(model_name="gated_mlp",
                        model_kwargs={"hidden": 64},
                        init_epochs=18, iterations=3)
    enld = ENLD(config).initialize(inventory)
    print(f"custom model: {type(enld.model).__name__} "
          f"({enld.model.num_parameters()} parameters)\n")

    f1s = []
    for arrival in arrivals:
        result = enld.detect(arrival)
        score = score_detection(result, arrival)
        f1s.append(score.f1)
        print(f"{arrival.name}: f1={score.f1:.3f} "
              f"({result.num_noisy} flagged)")
    print(f"\nmean f1 with GatedMLP backbone: {np.mean(f1s):.3f}")


if __name__ == "__main__":
    main()
