#!/usr/bin/env python3
"""Automated model-update scheduling (extension of paper §IV-F).

The paper leaves *when* to run the Alg. 4 model update to the platform.
This example wires ENLD to composite update triggers: refresh the
general model when enough stringently-voted clean inventory samples
have accumulated OR when the flagged-noisy rate drifts (a symptom of
the model aging against the arriving distribution).

Run:  python examples/update_scheduling.py
"""

import numpy as np

from repro import ArrivalStream, ENLD, ENLDConfig
from repro.core.scheduler import (AnyOf, CleanPoolGrowth,
                                  DetectionDegradation)
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.eval import score_detection
from repro.nn.metrics import evaluate_accuracy
from repro.noise import corrupt_labels, pair_asymmetric


def main() -> None:
    rng = np.random.default_rng(40)
    data = generate(toy(num_classes=6, samples_per_class=120), seed=41)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, noise_rate=0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)

    # Two arrival waves: the second has a much higher noise rate, which
    # the degradation trigger should notice.
    calm = ArrivalStream(pool, paper_shard_plan("toy"),
                         transition=transition, seed=42).arrivals()
    harsh_t = pair_asymmetric(6, noise_rate=0.45)
    harsh = ArrivalStream(pool, paper_shard_plan("toy"),
                          transition=harsh_t, seed=43).arrivals()

    enld = ENLD(ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                           init_epochs=18, iterations=3))
    enld.initialize(inventory)
    scheduler = AnyOf([
        CleanPoolGrowth(min_clean_samples=120),
        DetectionDegradation(window=3, tolerance=0.15),
    ])

    updates = 0
    for wave, arrivals in (("calm", calm), ("harsh", harsh)):
        for arrival in arrivals:
            result = enld.detect(arrival)
            scheduler.observe(result)
            score = score_detection(result, arrival)
            flag = result.num_noisy / max(len(arrival), 1)
            print(f"[{wave}] {arrival.name}: f1={score.f1:.3f} "
                  f"flagged={flag:.0%}")
            if scheduler.should_update() and len(enld.clean_inventory):
                acc_before = evaluate_accuracy(enld.model, pool,
                                               use_true_labels=True)
                enld.update_model()
                scheduler.notify_updated()
                acc_after = evaluate_accuracy(enld.model, pool,
                                              use_true_labels=True)
                updates += 1
                print(f"  >> scheduled model update #{updates}: "
                      f"accuracy {acc_before:.3f} -> {acc_after:.3f}")
    print(f"\ntotal scheduled updates: {updates}")


if __name__ == "__main__":
    main()
