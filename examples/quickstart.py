#!/usr/bin/env python3
"""Quickstart: detect noisy labels in an arriving dataset.

This is the smallest end-to-end use of the library:

1. generate a synthetic labelled dataset (stand-in for your data lake);
2. split it into inventory data and an incremental pool;
3. corrupt labels with pair-asymmetric noise;
4. initialise ENLD (train the general model, estimate P̃);
5. detect noisy labels in one arriving dataset and score the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ENLD, ArrivalStream, ENLDConfig
from repro.datasets import (paper_shard_plan, generate,
                            split_inventory_incremental, toy)
from repro.eval import score_detection
from repro.noise import corrupt_labels, pair_asymmetric


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A small 6-class dataset (each sample has hidden ground truth).
    data = generate(toy(num_classes=6, samples_per_class=80), seed=1)
    print(f"dataset: {len(data)} samples, {data.num_classes} classes")

    # 2. Inventory : incremental pool at the paper's 2:1 ratio.
    inventory_clean, pool = split_inventory_incremental(data, rng)

    # 3. 20% pair-asymmetric noise everywhere (class i -> i+1).
    transition = pair_asymmetric(6, noise_rate=0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                             transition=transition, seed=2).arrivals()

    # 4. Initialise the platform: train θ on I_t with Mixup, estimate P̃.
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=15, iterations=3)
    enld = ENLD(config).initialize(inventory)
    print(f"setup took {enld.setup_seconds:.1f}s "
          f"({enld.setup_train_samples} training sample-epochs)")

    # 5. Detect noisy labels in the first arriving dataset.
    arrival = arrivals[0]
    result = enld.detect(arrival)
    score = score_detection(result, arrival)
    print(f"\narrival {arrival.name!r}: {len(arrival)} samples, "
          f"true noise rate {arrival.noise_rate():.2f}")
    print(f"flagged {result.num_noisy} samples as noisy "
          f"in {result.process_seconds:.2f}s")
    print(f"precision={score.precision:.3f} recall={score.recall:.3f} "
          f"f1={score.f1:.3f}")

    # The noisy subset is ready for relabelling or exclusion:
    noisy = arrival.mask(result.noisy_mask)
    print(f"first five flagged sample ids: {noisy.ids[:5].tolist()}")


if __name__ == "__main__":
    main()
