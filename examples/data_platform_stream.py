#!/usr/bin/env python3
"""Data-platform scenario: continuous label-quality screening.

Models the paper's deployment target: a data lake holds a large
inventory; incremental datasets arrive continuously and each one needs
a noisy-label assessment.  The platform:

- keeps a :class:`DataLakeCatalog` of arrivals and detection records;
- serves each arrival with ENLD;
- accumulates stringently-voted clean inventory samples ``S_c``;
- periodically refreshes its general model (Algorithm 4) and keeps
  screening with the updated model.

Run:  python examples/data_platform_stream.py
"""

import numpy as np

from repro import ArrivalStream, DataLakeCatalog, ENLD, ENLDConfig
from repro.datalake.catalog import DetectionRecord
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.eval import score_detection
from repro.nn.metrics import evaluate_accuracy
from repro.noise import corrupt_labels, pair_asymmetric

UPDATE_AFTER = 2  # refresh the general model after this many arrivals


def main() -> None:
    rng = np.random.default_rng(10)
    data = generate(toy(num_classes=6, samples_per_class=100), seed=11)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, noise_rate=0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)

    catalog = DataLakeCatalog(inventory)
    stream = ArrivalStream(pool, paper_shard_plan("toy"),
                           transition=transition, seed=12)

    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=18, iterations=3)
    enld = ENLD(config).initialize(inventory)
    print(f"platform ready: inventory={len(inventory)}, "
          f"setup={enld.setup_seconds:.1f}s")
    acc0 = evaluate_accuracy(enld.model, pool, use_true_labels=True)
    print(f"general model accuracy on unseen data: {acc0:.3f}\n")

    for i, arrival in enumerate(stream):
        catalog.register_arrival(arrival)
        result = enld.detect(arrival)
        score = score_detection(result, arrival)
        catalog.record_detection(DetectionRecord(
            dataset_name=arrival.name,
            clean_ids=arrival.ids[result.clean_mask],
            noisy_ids=arrival.ids[result.noisy_mask],
            process_seconds=result.process_seconds))
        catalog.add_clean_inventory_ids(
            enld.inventory_candidates.ids[result.inventory_clean_positions])
        print(f"arrival {i}: {len(arrival):3d} samples | "
              f"flagged {result.num_noisy:3d} | f1={score.f1:.3f} | "
              f"{result.process_seconds:.2f}s")

        if i + 1 == UPDATE_AFTER:
            clean = enld.clean_inventory
            print(f"\n-- model update: retraining on |S_c|={len(clean)} "
                  "voted-clean inventory samples --")
            enld.update_model()
            acc1 = evaluate_accuracy(enld.model, pool,
                                     use_true_labels=True)
            print(f"-- accuracy {acc0:.3f} -> {acc1:.3f} --\n")

    print("\nplatform quality report:")
    for key, value in catalog.quality_report().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float)
              else f"  {key}: {value}")


if __name__ == "__main__":
    main()
