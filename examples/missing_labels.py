#!/usr/bin/env python3
"""Missing-label scenario (paper §V-H).

Missing labels are a special case of noisy labels: during fine-grained
detection every unlabelled sample receives one pseudo-label vote per
training step and is assigned its majority vote at the end.  This
example drops 25% / 50% / 75% of the labels in arriving datasets and
reports the pseudo-label quality alongside the usual detection F1.

Run:  python examples/missing_labels.py
"""

import numpy as np

from repro import ArrivalStream, ENLD, ENLDConfig
from repro.core.missing import missing_label_report, missing_rows
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.eval import score_detection
from repro.noise import corrupt_labels, pair_asymmetric


def main() -> None:
    rng = np.random.default_rng(20)
    data = generate(toy(num_classes=6, samples_per_class=100), seed=21)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, noise_rate=0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)

    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=18, iterations=3)
    enld = ENLD(config).initialize(inventory)
    print(f"platform ready (setup {enld.setup_seconds:.1f}s)\n")

    for fraction in (0.25, 0.5, 0.75):
        stream = ArrivalStream(pool, paper_shard_plan("toy"),
                               transition=transition,
                               missing_fraction=fraction, seed=22)
        arrival = stream.arrivals()[0]
        result = enld.detect(arrival)
        report = missing_label_report(result, arrival)
        score = score_detection(result, arrival)

        rows = missing_rows(arrival)
        recovered = result.pseudo_labels[rows]
        print(f"missing fraction {fraction:.0%}: "
              f"{report['missing_count']} unlabelled samples")
        print(f"  pseudo-label accuracy: {report['pseudo_accuracy']:.3f} "
              f"(macro F1 {report['pseudo_f1']:.3f})")
        print(f"  noisy-label detection F1 on labelled part: "
              f"{score.f1:.3f}")
        print(f"  example recovered labels: "
              f"{list(zip(rows[:4].tolist(), recovered[:4].tolist()))}\n")


if __name__ == "__main__":
    main()
