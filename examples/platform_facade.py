#!/usr/bin/env python3
"""One-object deployment: the NoisyLabelPlatform facade.

Everything the other examples wire by hand — ENLD, the catalog, clean
subset extraction, scheduled model updates, persistence — behind the
single service-shaped API a data platform would actually embed.

Run:  python examples/platform_facade.py
"""

import os
import tempfile

import numpy as np

from repro import ArrivalStream, ENLDConfig
from repro.core.scheduler import CleanPoolGrowth
from repro.datalake import NoisyLabelPlatform, save_catalog
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.noise import corrupt_labels, pair_asymmetric


def main() -> None:
    rng = np.random.default_rng(60)
    data = generate(toy(num_classes=6, samples_per_class=100), seed=61)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, noise_rate=0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)

    platform = NoisyLabelPlatform(
        inventory,
        config=ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                          init_epochs=18, iterations=3),
        scheduler=CleanPoolGrowth(min_clean_samples=150),
    )
    print(f"platform up in {platform.setup_seconds:.1f}s\n")

    stream = ArrivalStream(pool, paper_shard_plan("toy"),
                           transition=transition, seed=62)
    for arrival in stream:
        report = platform.submit(arrival)
        tag = "  [model refreshed]" if report.updated_model else ""
        print(f"{arrival.name}: flagged "
              f"{report.record.detected_noise_fraction:.0%} of "
              f"{report.record.total} samples "
              f"in {report.record.process_seconds:.2f}s{tag}")

    # Downstream consumers pull screened subsets by dataset name.
    first = platform.catalog.arrival_names[0]
    clean = platform.clean_subset(first)
    noisy = platform.noisy_subset(first)
    print(f"\n{first}: {len(clean)} clean rows ready for training, "
          f"{len(noisy)} rows routed to relabelling")

    # Bookkeeping survives restarts.
    with tempfile.TemporaryDirectory() as tmp:
        state_path = os.path.join(tmp, "catalog.json")
        save_catalog(platform.catalog, state_path)
        print(f"catalog state persisted "
              f"({os.path.getsize(state_path)} bytes)")

    print("\nplatform report:")
    for key, value in platform.quality_report().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float)
              else f"  {key}: {value}")


if __name__ == "__main__":
    main()
